#include <algorithm>

#include "ecdsa/ecdsa.hpp"

#include <stdexcept>

#include "common/metrics.hpp"
#include "ec/fixed_base.hpp"
#include "ec/verify_table.hpp"
#include "ecdsa/rfc6979.hpp"

namespace ecqv::sig {

namespace {

const ec::Curve& curve() { return ec::Curve::p256(); }

// e = leftmost 256 bits of the digest, reduced mod n.
bi::U256 digest_to_scalar(const hash::Digest& digest) {
  return curve().fn().reduce(bi::from_be_bytes(digest));
}

Signature sign_with_nonce(const bi::U256& d, const hash::Digest& digest,
                          const ct::Secret<bi::U256>& k, bool even_y) {
  const auto& fn = curve().fn();
  // declassify(): the nonce enters the fixed-base comb and the Montgomery
  // inversion — constant-time pipelines that need the typed scalar. This is
  // the single escape on the signing path.
  const bi::U256& kv = k.declassify();
  const ec::AffinePoint kg = ec::FixedBaseTable::p256().mul(kv);
  const bi::U256 r = fn.reduce(kg.x);
  if (r.is_zero()) return Signature{bi::U256(0), bi::U256(0)};
  const bi::U256 e = digest_to_scalar(digest);
  // s = k^-1 (e + r d) mod n, all in the Montgomery domain of n.
  const bi::U256 km = fn.to_mont(kv);
  const bi::U256 rd = fn.mul(fn.to_mont(r), fn.to_mont(d));
  const bi::U256 sum = fn.add(rd, fn.to_mont(e));
  count_op(Op::kModInv);
  bi::U256 s = fn.from_mont(fn.mul(fn.inv(km), sum));
  // Batchable variant: (r, s) and (r, n-s) are equally valid, but a verifier
  // recomputes -kG from the latter. Choosing the one whose recomputed point
  // has EVEN y lets the batch verifier lift R from r alone (ecdsa.hpp).
  if (even_y && kg.y.is_odd()) {
    bi::U256 t;
    bi::sub(t, curve().order(), s);
    s = t;
  }
  return Signature{r, s};
}

}  // namespace

Bytes encode_signature(const Signature& sig) {
  Bytes out(kSignatureSize);
  bi::to_be_bytes(sig.r, ByteSpan(out.data(), 32));
  bi::to_be_bytes(sig.s, ByteSpan(out.data() + 32, 32));
  return out;
}

Result<Signature> decode_signature(ByteView data) {
  if (data.size() != kSignatureSize) return Error::kBadLength;
  Signature sig{bi::from_be_bytes(data.subspan(0, 32)), bi::from_be_bytes(data.subspan(32, 32))};
  return sig;
}

PrivateKey::PrivateKey(const bi::U256& d) : d_(d) {
  if (d.is_zero() || bi::cmp(d, curve().order()) >= 0)
    throw std::invalid_argument("PrivateKey: scalar out of range");
}

PrivateKey PrivateKey::generate(rng::Rng& rng) {
  return PrivateKey(curve().random_scalar(rng));
}

ec::AffinePoint PrivateKey::public_point() const {
  return ec::FixedBaseTable::p256().mul(d_);
}

Signature PrivateKey::sign_digest(const hash::Digest& digest) const {
  for (unsigned retry = 0;; ++retry) {
    const ct::Secret<bi::U256> k = rfc6979_nonce(d_, digest, retry);
    const Signature sig = sign_with_nonce(d_, digest, k, /*even_y=*/false);
    if (!sig.r.is_zero() && !sig.s.is_zero()) return sig;
  }
}

Signature PrivateKey::sign(ByteView message) const { return sign_digest(hash::sha256(message)); }

Signature PrivateKey::sign_randomized(ByteView message, rng::Rng& rng) const {
  const hash::Digest digest = hash::sha256(message);
  for (;;) {
    const ct::Secret<bi::U256> k(curve().random_scalar(rng));
    const Signature sig = sign_with_nonce(d_, digest, k, /*even_y=*/false);
    if (!sig.r.is_zero() && !sig.s.is_zero()) return sig;
  }
}

Signature PrivateKey::sign_digest_batchable(const hash::Digest& digest) const {
  for (unsigned retry = 0;; ++retry) {
    const ct::Secret<bi::U256> k = rfc6979_nonce(d_, digest, retry);
    const Signature sig = sign_with_nonce(d_, digest, k, /*even_y=*/true);
    if (!sig.r.is_zero() && !sig.s.is_zero()) return sig;
  }
}

Signature PrivateKey::sign_batchable(ByteView message) const {
  return sign_digest_batchable(hash::sha256(message));
}

namespace {

// Shared scalar-side preamble of verification: range checks and
// u1 = e/s, u2 = r/s. Returns false for malformed signatures.
bool verify_scalars(const hash::Digest& digest, const Signature& sig, bi::U256& u1,
                    bi::U256& u2) {
  const auto& fn = curve().fn();
  const bi::U256& n = curve().order();
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (bi::cmp(sig.r, n) >= 0 || bi::cmp(sig.s, n) >= 0) return false;
  const bi::U256 e = digest_to_scalar(digest);
  count_op(Op::kModInv);
  // s is public: the variable-time gcd inverse is safe (and much faster
  // than the Fermat ladder). The final x == r check runs in projective
  // form inside dual_mul_checks_r, avoiding a field inversion entirely.
  const bi::U256 w = fn.inv_vartime(fn.to_mont(sig.s));
  u1 = fn.from_mont(fn.mul(fn.to_mont(e), w));
  u2 = fn.from_mont(fn.mul(fn.to_mont(sig.r), w));
  return true;
}

}  // namespace

bool verify_digest(const ec::AffinePoint& q, const hash::Digest& digest, const Signature& sig) {
  if (q.infinity || !curve().is_on_curve(q)) return false;
  bi::U256 u1, u2;
  if (!verify_scalars(digest, sig, u1, u2)) return false;
  return curve().dual_mul_checks_r(u1, u2, q, sig.r);
}

bool verify(const ec::AffinePoint& q, ByteView message, const Signature& sig) {
  return verify_digest(q, hash::sha256(message), sig);
}

bool verify_digest(const ec::VerifyTable& q_table, const hash::Digest& digest,
                   const Signature& sig) {
  // The table build already validated the point (on-curve, not infinity).
  if (q_table.empty()) return false;
  bi::U256 u1, u2;
  if (!verify_scalars(digest, sig, u1, u2)) return false;
  return curve().dual_mul_checks_r(u1, u2, q_table, sig.r);
}

bool verify(const ec::VerifyTable& q_table, ByteView message, const Signature& sig) {
  return verify_digest(q_table, hash::sha256(message), sig);
}

}  // namespace ecqv::sig
