#include "ecdsa/rfc6979.hpp"

#include "ec/curve.hpp"
#include "hash/hmac.hpp"

namespace ecqv::sig {

namespace {

// bits2octets per RFC 6979 §2.3.4: reduce the digest-as-integer mod n, then
// encode in 32 bytes. For P-256 qlen == hlen == 256 so no bit shifting.
Bytes bits2octets(const hash::Digest& digest) {
  const auto& curve = ec::Curve::p256();
  const bi::U256 z = curve.fn().reduce(bi::from_be_bytes(digest));
  return bi::to_be_bytes(z);
}

}  // namespace

ct::Secret<bi::U256> rfc6979_nonce(const bi::U256& private_key, const hash::Digest& digest,
                                   unsigned retry) {
  const auto& curve = ec::Curve::p256();
  Bytes x = bi::to_be_bytes(private_key);
  const Bytes h = bits2octets(digest);

  std::array<std::uint8_t, 32> v{};
  std::array<std::uint8_t, 32> k{};
  v.fill(0x01);
  k.fill(0x00);
  constexpr std::uint8_t kZero = 0x00;
  constexpr std::uint8_t kOne = 0x01;

  {
    hash::HmacSha256 mac(k);
    mac.update(v);
    mac.update(ByteView(&kZero, 1));
    mac.update(x);
    mac.update(h);
    k = mac.finish();
  }
  v = hash::hmac_sha256(k, v);
  {
    hash::HmacSha256 mac(k);
    mac.update(v);
    mac.update(ByteView(&kOne, 1));
    mac.update(x);
    mac.update(h);
    k = mac.finish();
  }
  v = hash::hmac_sha256(k, v);

  unsigned produced = 0;
  for (;;) {
    // qlen == hlen: one HMAC output is a full candidate.
    v = hash::hmac_sha256(k, v);
    const bi::U256 candidate = bi::from_be_bytes(v);
    if (!candidate.is_zero() && bi::cmp(candidate, curve.order()) < 0) {
      if (produced == retry) {
        ct::Secret<bi::U256> out(candidate);
        // x carries the private key, v the nonce bytes, k the chained HMAC
        // key: none may outlive the call.
        secure_wipe(x);
        secure_wipe(ByteSpan(v));
        secure_wipe(ByteSpan(k));
        return out;
      }
      ++produced;
    }
    // Candidate rejected or reserved for an earlier retry: K/V update.
    {
      hash::HmacSha256 mac(k);
      mac.update(v);
      mac.update(ByteView(&kZero, 1));
      k = mac.finish();
    }
    v = hash::hmac_sha256(k, v);
  }
}

}  // namespace ecqv::sig
