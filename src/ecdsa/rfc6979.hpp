// RFC 6979 deterministic nonce derivation for ECDSA over secp256r1/SHA-256.
#pragma once

#include "bigint/u256.hpp"
#include "common/secret.hpp"
#include "hash/sha256.hpp"

namespace ecqv::sig {

/// Derives the per-signature nonce k in [1, n-1] from the private key and
/// message digest per RFC 6979 §3.2 (HMAC-SHA256 instantiation). The
/// `retry` counter requests the retry-th candidate (0 for the first); the
/// ECDSA layer increments it when a candidate yields r == 0 or s == 0.
///
/// The nonce is THE ECDSA secret — one leaked k recovers the private key
/// from a single signature — so it comes back secret-tainted: no ==, no
/// branching, declassified only at the mouth of the constant-time scalar
/// pipeline (sign_with_nonce). The derivation's internal K/V/x buffers are
/// wiped before returning.
ct::Secret<bi::U256> rfc6979_nonce(const bi::U256& private_key, const hash::Digest& digest,
                                   unsigned retry = 0);

}  // namespace ecqv::sig
