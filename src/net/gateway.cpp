#include "net/gateway.hpp"

#include <algorithm>

namespace ecqv::net {

FleetGateway::FleetGateway(proto::Transport& bus, proto::Transport& backhaul, Config config)
    : bus_(bus), backhaul_(backhaul), config_(config) {
  bus_.attach(config_.backend_id);
}

void FleetGateway::add_ecu(const cert::DeviceId& ecu) { learn_ecu(ecu); }

void FleetGateway::learn_ecu(const cert::DeviceId& ecu) {
  if (std::find(ecus_.begin(), ecus_.end(), ecu) != ecus_.end()) return;
  ecus_.push_back(ecu);
  backhaul_.attach(ecu);
  ++stats_.ecus_learned;
}

std::size_t FleetGateway::pump() {
  std::size_t moved = 0;
  // Bus → backhaul: everything the ECUs addressed to the backend.
  while (auto datagram = bus_.receive(config_.backend_id)) {
    learn_ecu(datagram->src);
    if (backhaul_.send(datagram->src, datagram->dst, datagram->message).ok()) {
      ++stats_.to_backhaul;
      ++moved;
    } else {
      ++stats_.send_errors;
    }
  }
  // Backhaul → bus: everything the backend addressed to a known ECU.
  for (const cert::DeviceId& ecu : ecus_) {
    while (auto datagram = backhaul_.receive(ecu)) {
      if (bus_.send(datagram->src, datagram->dst, datagram->message).ok()) {
        ++stats_.to_bus;
        ++moved;
      } else {
        ++stats_.send_errors;
      }
    }
  }
  return moved;
}

}  // namespace ecqv::net
