#include "net/tcp_transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace ecqv::net {

Result<std::unique_ptr<TcpStreamTransport>> TcpStreamTransport::listen(Config config) {
  auto fd = tcp_listen_loopback(config.port);
  if (!fd.ok()) return fd.error();
  auto bound = local_port(fd->get());
  if (!bound.ok()) return bound.error();
  return std::unique_ptr<TcpStreamTransport>(
      new TcpStreamTransport(config, std::move(fd).value(), Fd(), bound.value()));
}

Result<std::unique_ptr<TcpStreamTransport>> TcpStreamTransport::connect_to(Config config) {
  auto fd = tcp_connect_loopback(config.port);
  if (!fd.ok()) return fd.error();
  return std::unique_ptr<TcpStreamTransport>(
      new TcpStreamTransport(config, Fd(), std::move(fd).value(), config.port));
}

TcpStreamTransport::TcpStreamTransport(Config config, Fd listen_fd, Fd client_fd,
                                       std::uint16_t port)
    : config_(config), listen_fd_(std::move(listen_fd)), port_(port) {
  mutex_.enable(config.concurrent);
  if (client_fd.valid()) {
    MutexLock lock(mutex_);
    client_fd_ = client_fd.get();
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(client_fd);
    conns_.emplace(client_fd_, std::move(conn));
  }
}

void TcpStreamTransport::attach(const cert::DeviceId& endpoint) {
  MutexLock lock(mutex_);
  inboxes_.try_emplace(endpoint);
}

Status TcpStreamTransport::send(const cert::DeviceId& src, const cert::DeviceId& dst,
                                const proto::Message& message) {
  const std::uint16_t tag = session_counter_.fetch_add(1, std::memory_order_relaxed);
  const Bytes wire = encode_datagram(proto::Datagram{src, dst, message}, tag);
  MutexLock lock(mutex_);
  if (inboxes_.find(src) == inboxes_.end()) return Error::kBadState;
  int conn_fd = client_fd_;
  if (const auto route = routes_.find(dst); route != routes_.end()) conn_fd = route->second;
  const auto it = conns_.find(conn_fd);
  if (it == conns_.end() || it->second->dead) {
    ++stats_.unroutable;
    return Error::kBadState;
  }
  Conn& conn = *it->second;
  if (conn.tx.size() - conn.tx_offset + wire.size() + kFramePrefixSize >
      config_.max_tx_backlog) {
    ++wire_stats_.send_drops;
    return {};
  }
  append_frame(conn.tx, wire);
  ++wire_stats_.datagrams_sent;
  wire_stats_.bytes_sent += wire.size() + kFramePrefixSize;
  flush_conn(conn);
  return {};
}

void TcpStreamTransport::flush_conn(Conn& conn) {
  while (conn.tx_offset < conn.tx.size()) {
    ssize_t wrote;
    do {
      // MSG_NOSIGNAL: a peer that vanished mid-write is a dead connection,
      // not a SIGPIPE for the whole process.
      wrote = ::send(conn.fd.get(), conn.tx.data() + conn.tx_offset,
                     conn.tx.size() - conn.tx_offset, MSG_NOSIGNAL);
    } while (wrote < 0 && errno == EINTR);
    if (wrote < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOTCONN ||
          errno == EINPROGRESS) {
        // Kernel said "not now" (full buffer or handshake still running):
        // the remainder stays queued; the event loop retries on writable.
        ++stats_.short_writes;
        break;
      }
      conn.dead = true;
      break;
    }
    conn.tx_offset += static_cast<std::size_t>(wrote);
    if (conn.tx_offset < conn.tx.size()) ++stats_.short_writes;
  }
  if (conn.tx_offset == conn.tx.size()) {
    conn.tx.clear();
    conn.tx_offset = 0;
  } else if (conn.tx_offset > conn.tx.size() / 2 && conn.tx_offset > 4096) {
    conn.tx.erase(conn.tx.begin(), conn.tx.begin() + static_cast<std::ptrdiff_t>(conn.tx_offset));
    conn.tx_offset = 0;
  }
}

void TcpStreamTransport::accept_pending() {
  if (!listen_fd_.valid()) return;
  for (;;) {
    int fd;
    do {
      fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) break;  // EAGAIN: no more pending
    if (!set_nonblocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(fd);
    conns_.emplace(fd, std::move(conn));
    ++stats_.accepted;
  }
}

std::size_t TcpStreamTransport::service_conn(Conn& conn) {
  std::size_t decoded = 0;
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    ssize_t got;
    do {
      got = ::recv(conn.fd.get(), buffer, sizeof buffer, 0);
    } while (got < 0 && errno == EINTR);
    if (got < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != ENOTCONN) conn.dead = true;
      break;
    }
    if (got == 0) {  // orderly EOF
      conn.dead = true;
      break;
    }
    wire_stats_.bytes_received += static_cast<std::size_t>(got);
    if (!conn.decoder.feed(ByteView(buffer, static_cast<std::size_t>(got))).ok()) {
      ++stats_.framing_violations;
      conn.dead = true;
      break;
    }
    while (auto frame = conn.decoder.next_frame()) {
      auto datagram = decode_datagram(*frame);
      if (!datagram.ok()) {
        ++wire_stats_.decode_errors;
        continue;
      }
      // This connection is how we reach whoever sends through it.
      routes_[datagram->src] = conn.fd.get();
      const auto inbox = inboxes_.find(datagram->dst);
      if (inbox == inboxes_.end()) {
        ++stats_.unknown_destination;
        continue;
      }
      inbox->second.push_back(std::move(datagram).value());
      ++wire_stats_.datagrams_received;
      ++decoded;
    }
  }
  return decoded;
}

void TcpStreamTransport::reap_dead() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (!it->second->dead) {
      ++it;
      continue;
    }
    const int fd = it->first;
    for (auto route = routes_.begin(); route != routes_.end();)
      route = route->second == fd ? routes_.erase(route) : std::next(route);
    it = conns_.erase(it);
    ++stats_.connections_closed;
  }
}

std::size_t TcpStreamTransport::service() {
  MutexLock lock(mutex_);
  accept_pending();
  std::size_t decoded = 0;
  for (auto& [fd, conn] : conns_) {
    if (conn->dead) continue;
    decoded += service_conn(*conn);
    if (!conn->dead) flush_conn(*conn);
  }
  reap_dead();
  return decoded;
}

std::optional<proto::Datagram> TcpStreamTransport::receive(const cert::DeviceId& dst) {
  service();
  MutexLock lock(mutex_);
  const auto inbox = inboxes_.find(dst);
  if (inbox == inboxes_.end() || inbox->second.empty()) return std::nullopt;
  proto::Datagram out = std::move(inbox->second.front());
  inbox->second.pop_front();
  return out;
}

bool TcpStreamTransport::idle() {
  service();
  MutexLock lock(mutex_);
  for (const auto& [id, inbox] : inboxes_)
    if (!inbox.empty()) return false;
  for (const auto& [fd, conn] : conns_)
    if (conn->tx_offset < conn->tx.size()) return false;
  return true;
}

std::vector<int> TcpStreamTransport::poll_fds() {
  MutexLock lock(mutex_);
  std::vector<int> fds;
  fds.reserve(conns_.size() + 1);
  if (listen_fd_.valid()) fds.push_back(listen_fd_.get());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  return fds;
}

bool TcpStreamTransport::wants_write(int fd) {
  MutexLock lock(mutex_);
  const auto it = conns_.find(fd);
  return it != conns_.end() && it->second->tx_offset < it->second->tx.size();
}

std::size_t TcpStreamTransport::connections() {
  MutexLock lock(mutex_);
  return conns_.size();
}

}  // namespace ecqv::net
