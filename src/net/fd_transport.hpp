// Common shape of the socket-backed transports: real file descriptors, a
// non-blocking service() step that moves bytes between the kernel and the
// per-endpoint inboxes, and a wall clock.
//
// Unlike the simulated links, a socket transport cannot conjure progress
// inside receive() alone — the kernel hands it bytes only when they have
// arrived. The epoll event loop (net/event_loop.hpp) owns blocking: it
// watches poll_fds(), calls service() on readiness, and the Transport
// receive()/idle() methods then operate on what service() decoded. Polling
// callers (tests, simple tools) may just call service() in a loop.
//
// The clock is real: now_ms() is the steady monotonic wall clock, shared
// by every FdTransport in the process. Brokers bound to a socket transport
// therefore schedule retransmissions in actual milliseconds — the
// reliability engine's RTO backoff runs against the same clock the kernel
// delivers packets on.
#pragma once

#include <chrono>
#include <vector>

#include "core/transport.hpp"

namespace ecqv::net {

class FdTransport : public proto::Transport {
 public:
  /// On-the-wire accounting, one level below the protocol payload counts
  /// the simulated links keep: what actually crossed the socket.
  struct WireStats {
    StatCounter datagrams_sent = 0;
    StatCounter datagrams_received = 0;
    StatCounter bytes_sent = 0;      // encoded fabric bytes incl. framing
    StatCounter bytes_received = 0;
    StatCounter decode_errors = 0;   // hostile/corrupt inbound, dropped
    StatCounter send_drops = 0;      // kernel refused (full buffers), dropped
  };

  /// File descriptors the event loop must watch for readability.
  [[nodiscard]] virtual std::vector<int> poll_fds() = 0;

  /// True when `fd` has queued outbound bytes the kernel refused so far —
  /// the event loop adds EPOLLOUT interest for exactly these.
  [[nodiscard]] virtual bool wants_write(int fd) { return (void)fd, false; }

  /// Non-blocking I/O step: drains readable sockets into the endpoint
  /// inboxes and flushes pending writes. Returns the number of fabric
  /// datagrams decoded. Never blocks; safe to call with nothing pending.
  virtual std::size_t service() = 0;

  /// Steady wall clock in ms, one epoch per process — real time, because
  /// real packets. All FdTransports share it, so a broker's retransmission
  /// deadlines and the event loop's epoll timeouts read the same clock.
  [[nodiscard]] double now_ms() override { return steady_now_ms(); }

  static double steady_now_ms() {
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - epoch)
        .count();
  }

  [[nodiscard]] const WireStats& wire_stats() const { return wire_stats_; }

 protected:
  WireStats wire_stats_;
};

}  // namespace ecqv::net
