// Loopback soak harness: drives a fleet of short-lived clients against one
// socket-backed broker until the server holds `sessions` concurrent store
// sessions, each established by a real handshake over the kernel's
// loopback stack and exercised with sealed records (piggyback-rekeyed
// mid-stream when the policy's record budget is spent).
//
// Clients are admitted in waves: each wave provisions fresh devices, runs
// its handshakes and telemetry bursts concurrently, then retires its
// client-side brokers — the SERVER keeps every negotiated session, which
// is the point: 100k concurrent sessions are 100k store entries behind one
// socket, not 100k live client objects. Waves bound client memory and the
// UDP socket buffers at the same time.
//
// Shared by test_net_soak (small, TSan-friendly), bench_net_soak (the
// 100k+ capture) and the net-smoke CI job.
#pragma once

#include <cstdint>

#include "common/result.hpp"

namespace ecqv::net {

struct SoakConfig {
  std::size_t sessions = 1000;          // total concurrent server sessions
  std::size_t wave = 256;               // clients in flight at once
  std::size_t records_per_session = 4;  // sealed records per client
  std::uint64_t records_budget = 2;     // per-epoch seal budget → mid-stream rekey
  std::size_t server_workers = 0;       // broker worker threads (0 = inline)
  bool tcp = false;                     // false = UDP datagrams, true = TCP streams
  int timeout_ms = 300000;              // whole-soak wall-clock budget
  std::uint64_t seed = 42;
};

struct SoakReport {
  std::size_t handshakes = 0;         // completed on the server
  std::size_t records = 0;            // sealed records the server opened
  std::size_t rekeys = 0;             // piggybacked epoch advances applied
  std::size_t server_sessions = 0;    // concurrent store sessions at the end
  std::size_t retransmits = 0;        // reliability engine firings (loss happened)
  double elapsed_ms = 0.0;
  std::uint64_t wire_bytes = 0;       // server-side socket bytes, both directions
  std::uint64_t wire_datagrams = 0;   // server-side datagrams received
  std::uint64_t send_drops = 0;       // kernel-refused sends (UDP backpressure)
};

/// Runs the soak; kBadState when it fails to converge inside timeout_ms
/// or any handshake fails.
Result<SoakReport> run_loopback_soak(const SoakConfig& config);

}  // namespace ecqv::net
