// UDP socket transport: one bound socket carrying any number of local
// endpoints, one fabric datagram per UDP datagram (net/wire.hpp encoding,
// no extra framing — the kernel preserves datagram boundaries).
//
// Addressing: fabric device ids, not sockets, are the routable names. A
// route maps a remote device id to the UDP address its transport is bound
// to. Routes are installed explicitly (add_route — the client knowing the
// server's port) or learned from inbound traffic (the server learns each
// client's address from the source of its first datagram, exactly how the
// session broker learns peers). One server socket therefore terminates an
// entire fleet: 100k sessions are 100k store entries and route entries,
// not 100k file descriptors.
//
// Loss: UDP drops are real here. A send the kernel refuses (full buffers)
// is counted and reported as success — loss is the receiver's problem, as
// on any datagram link — and the broker's reliability engine (PR 8)
// retransmits against this transport's wall clock.
#pragma once

#include <netinet/in.h>

#include <memory>
#include <unordered_map>

#include "net/fd_transport.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace ecqv::net {

class UdpTransport final : public FdTransport {
 public:
  struct Config {
    std::uint16_t port = 0;   // 0 = kernel-assigned ephemeral port
    bool concurrent = false;  // arm the mutex for worker-pool brokers
    /// Kernel buffer request for both directions (clamped to
    /// rmem_max/wmem_max). The default 208 KiB rcvbuf holds only ~80
    /// handshake replies — one fat wave landing while the servicing
    /// thread is inside the broker overflows it, and the resulting
    /// synchronized retransmit storm re-overflows it every RTO round.
    int buffer_bytes = 1 << 22;
  };

  struct Stats {
    StatCounter unknown_destination = 0;  // inbound for an unattached id
    StatCounter unroutable = 0;           // send() with no route for dst
  };

  /// Opens and binds the socket; fails (kBadState) when the port is taken.
  static Result<std::unique_ptr<UdpTransport>> open(Config config);

  /// The bound UDP port (resolves ephemeral requests) — what peers
  /// add_route() against.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Installs a static route: datagrams for `dst` go to 127.0.0.1:`port`.
  void add_route(const cert::DeviceId& dst, std::uint16_t port);

  // Transport interface --------------------------------------------------
  void attach(const cert::DeviceId& endpoint) override;
  Status send(const cert::DeviceId& src, const cert::DeviceId& dst,
              const proto::Message& message) override;
  std::optional<proto::Datagram> receive(const cert::DeviceId& dst) override;
  [[nodiscard]] bool idle() override;

  // FdTransport interface ------------------------------------------------
  [[nodiscard]] std::vector<int> poll_fds() override { return {fd_.get()}; }
  std::size_t service() override;

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  UdpTransport(Fd fd, std::uint16_t port, const Config& config);

  Fd fd_;
  std::uint16_t port_ = 0;
  OptionalMutex mutex_;
  std::unordered_map<cert::DeviceId, std::deque<proto::Datagram>, proto::DeviceIdHash> inboxes_
      GUARDED_BY(mutex_);
  std::unordered_map<cert::DeviceId, sockaddr_in, proto::DeviceIdHash> routes_
      GUARDED_BY(mutex_);
  std::atomic<std::uint16_t> session_counter_{0};
  Stats stats_;
};

}  // namespace ecqv::net
