// TCP stream transport: length-prefixed fabric datagrams (net/wire.hpp)
// over real connections, with explicit partial-read and short-write state
// machines.
//
//   * Reads land at arbitrary byte boundaries — each connection owns a
//     StreamDecoder that reassembles frames from whatever read() returned,
//     one byte at a time if the kernel feels like it.
//   * Writes may be short — each connection owns an outbound buffer with a
//     flush offset; what the kernel refuses now goes out when the event
//     loop reports the fd writable (wants_write()).
//
// Server mode (listen) accepts any number of connections on one port and
// learns which device ids live behind each connection from inbound frame
// sources. Client mode (connect_to) holds one connection and routes every
// destination through it. A framing violation (zero or oversized declared
// length) kills the connection — a desynced stream has no recovery point.
//
// A connection dying drops its routes: sends to peers behind it then fail
// kBadState (unroutable) until the peer reconnects, while inboxes keep
// whatever was already decoded. TCP handles loss itself; the broker's
// reliability engine stays useful for dead-connection recovery.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "net/fd_transport.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace ecqv::net {

class TcpStreamTransport final : public FdTransport {
 public:
  struct Config {
    std::uint16_t port = 0;   // listen(): 0 = ephemeral; connect_to(): target
    bool concurrent = false;  // arm the mutex for worker-pool brokers
    /// Cap on one connection's un-flushed outbound buffer; a frame that
    /// would exceed it is dropped (counted in wire_stats().send_drops) —
    /// backpressure must not become unbounded memory.
    std::size_t max_tx_backlog = 16 * 1024 * 1024;
  };

  struct Stats {
    StatCounter accepted = 0;
    StatCounter connections_closed = 0;  // EOF/reset/framing-violation teardowns
    StatCounter framing_violations = 0;
    StatCounter unknown_destination = 0;
    StatCounter unroutable = 0;
    StatCounter short_writes = 0;  // flushes the kernel cut short
  };

  /// Server: listen on 127.0.0.1:config.port.
  static Result<std::unique_ptr<TcpStreamTransport>> listen(Config config);

  /// Client: one connection to 127.0.0.1:config.port (non-blocking — sends
  /// buffer until the handshake completes).
  static Result<std::unique_ptr<TcpStreamTransport>> connect_to(Config config);

  /// Listening port (server mode; resolves ephemeral requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // Transport interface --------------------------------------------------
  void attach(const cert::DeviceId& endpoint) override;
  Status send(const cert::DeviceId& src, const cert::DeviceId& dst,
              const proto::Message& message) override;
  std::optional<proto::Datagram> receive(const cert::DeviceId& dst) override;
  [[nodiscard]] bool idle() override;

  // FdTransport interface ------------------------------------------------
  [[nodiscard]] std::vector<int> poll_fds() override;
  [[nodiscard]] bool wants_write(int fd) override;
  std::size_t service() override;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t connections();

 private:
  struct Conn {
    Fd fd;
    StreamDecoder decoder;
    Bytes tx;                    // encoded frames awaiting the kernel
    std::size_t tx_offset = 0;   // flushed prefix of tx
    bool dead = false;
  };

  TcpStreamTransport(Config config, Fd listen_fd, Fd client_fd, std::uint16_t port);

  void accept_pending() REQUIRES(mutex_);
  std::size_t service_conn(Conn& conn) REQUIRES(mutex_);
  /// Short-write state machine: pushes tx[tx_offset..] until done or the
  /// kernel refuses; compacts the flushed prefix.
  void flush_conn(Conn& conn) REQUIRES(mutex_);
  void reap_dead() REQUIRES(mutex_);

  Config config_;
  Fd listen_fd_;  // server mode only
  std::uint16_t port_ = 0;
  int client_fd_ = -1;  // client mode: the single connection's fd

  OptionalMutex mutex_;
  std::map<int, std::unique_ptr<Conn>> conns_ GUARDED_BY(mutex_);
  std::unordered_map<cert::DeviceId, int, proto::DeviceIdHash> routes_ GUARDED_BY(mutex_);
  std::unordered_map<cert::DeviceId, std::deque<proto::Datagram>, proto::DeviceIdHash> inboxes_
      GUARDED_BY(mutex_);
  std::atomic<std::uint16_t> session_counter_{0};
  Stats stats_;
};

}  // namespace ecqv::net
