// IP fabric wire format: how one addressed protocol datagram travels on a
// real socket.
//
// The encoding is deliberately byte-identical to the fabric payload the
// CAN-FD transport segments through ISO-TP (src/canfd):
//
//   src id (16) || dst id (16) || AppPdu(comm code 1, session id 2, op 1, data)
//
// so the fleet gateway bridges a CAN domain onto IP backhaul by re-framing
// only — the session-layer bytes cross the gateway untouched, and wire
// accounting on either leg measures the same protocol payload.
//
// Framing per transport:
//   * UDP      — one fabric datagram per UDP datagram, no extra bytes.
//   * TCP      — u32 big-endian length prefix || fabric datagram, decoded
//                incrementally by StreamDecoder (partial reads land at any
//                byte boundary; short writes are the sender's problem).
#pragma once

#include <optional>

#include "canfd/session_layer.hpp"
#include "core/transport.hpp"

namespace ecqv::net {

/// Fixed prefix of every fabric datagram: the two 16-byte device ids plus
/// the session-layer PDU header.
inline constexpr std::size_t kDatagramHeaderSize =
    2 * cert::kDeviceIdSize + can::kAppHeaderSize;

/// Hard bound on one encoded fabric datagram. No protocol message comes
/// near this (the largest handshake step is < 1 KiB), so any frame
/// declaring more is an attack or a desynced stream, never real traffic.
inline constexpr std::size_t kMaxDatagramBytes = 16 * 1024;

/// TCP stream framing: u32 big-endian payload length, then the payload.
inline constexpr std::size_t kFramePrefixSize = 4;

/// Encodes one addressed fabric datagram. `session_id` is a wire-level
/// correlation tag (the CAN-FD transport uses its transfer counter); it is
/// not consulted on decode.
Bytes encode_datagram(const proto::Datagram& datagram, std::uint16_t session_id = 0);

/// Decodes a full fabric datagram. kBadLength when shorter than the fixed
/// header, kDecodeFailed on a malformed PDU or an op code outside the
/// fabric vocabulary — hostile bytes never throw.
Result<proto::Datagram> decode_datagram(ByteView bytes);

/// Appends `payload` to `out` framed for a TCP stream (length prefix +
/// bytes).
void append_frame(Bytes& out, ByteView payload);

/// Incremental TCP frame reassembler. Feed arbitrary chunks (whatever
/// read() produced, split at any byte boundary); pop complete frames with
/// next_frame(). A declared length of zero or beyond `max_frame_bytes`
/// poisons the decoder — after a framing violation the stream has no
/// recoverable synchronization point, so the connection must be dropped.
class StreamDecoder {
 public:
  explicit StreamDecoder(std::size_t max_frame_bytes = kMaxDatagramBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffers `chunk` and extracts any frames it completes. Returns
  /// kBadLength on a framing violation (decoder poisoned, chunk dropped).
  Status feed(ByteView chunk);

  /// Next complete frame payload (prefix stripped), FIFO. nullopt when no
  /// full frame is buffered.
  std::optional<Bytes> next_frame();

  /// True after a framing violation; feed() keeps failing, the owner must
  /// tear the connection down.
  [[nodiscard]] bool poisoned() const { return poisoned_; }

  /// Bytes buffered toward an incomplete frame (diagnostics/tests).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - consumed_; }

  [[nodiscard]] std::size_t frames_decoded() const { return frames_decoded_; }

 private:
  void extract_frames();
  void compact();

  std::size_t max_frame_bytes_;
  Bytes buffer_;
  std::size_t consumed_ = 0;  // parsed prefix of buffer_, reclaimed by compact()
  std::deque<Bytes> frames_;
  bool poisoned_ = false;
  std::size_t frames_decoded_ = 0;
};

}  // namespace ecqv::net
