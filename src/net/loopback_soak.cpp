#include "net/loopback_soak.hpp"

#include <memory>
#include <string>
#include <vector>

#include "core/concurrent_broker.hpp"
#include "core/credentials.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "net/udp_transport.hpp"
#include "rng/locked_rng.hpp"
#include "rng/test_rng.hpp"

namespace ecqv::net {

namespace {

constexpr std::uint64_t kNow = 1700000000;
constexpr std::uint64_t kLifetime = 7 * 86400;

/// One wave client: a lightweight SessionBroker plus its drive state. The
/// broker dies with the wave; only the server-side session survives it.
/// The credentials live here because SessionBroker holds them by
/// reference for its whole lifetime (declared before `broker` so they
/// outlive it on destruction too).
struct Client {
  std::unique_ptr<proto::Credentials> creds;
  std::unique_ptr<rng::TestRng> rng;
  std::unique_ptr<rng::LockedRng> locked;
  std::unique_ptr<proto::SessionBroker> broker;
  std::size_t records_sent = 0;
  bool done = false;
};

}  // namespace

Result<SoakReport> run_loopback_soak(const SoakConfig& config) {
  const proto::RekeyPolicy policy{config.records_budget, /*max_age_seconds=*/UINT64_MAX};

  // --- server: one socket, one broker, every session --------------------
  rng::TestRng ca_boot(config.seed);
  cert::CertificateAuthority ca(cert::DeviceId::from_string("soak-ca"),
                                ec::Curve::p256().random_scalar(ca_boot));
  rng::TestRng provision_rng(config.seed + 1);
  const proto::Credentials server_creds = proto::provision_device(
      ca, cert::DeviceId::from_string("soak-server"), kNow, kLifetime, provision_rng);

  std::unique_ptr<FdTransport> server_transport;
  std::uint16_t server_port = 0;
  const bool concurrent = config.server_workers > 0;
  if (config.tcp) {
    auto opened = TcpStreamTransport::listen({.port = 0, .concurrent = concurrent});
    if (!opened.ok()) return opened.error();
    server_port = (*opened)->port();
    server_transport = std::move(opened).value();
  } else {
    auto opened = UdpTransport::open({.port = 0, .concurrent = concurrent});
    if (!opened.ok()) return opened.error();
    server_port = (*opened)->port();
    server_transport = std::move(opened).value();
  }

  proto::ConcurrentSessionBroker::Config server_config;
  server_config.workers = config.server_workers;
  server_config.broker.store.capacity = config.sessions * 2;
  server_config.broker.store.shards = 64;
  server_config.broker.store.policy = policy;
  server_config.broker.max_pending = config.wave * 4;
  server_config.broker.peer_cache_capacity = config.sessions * 2;
  server_config.broker.reliability.enabled = true;
  std::size_t records_opened = 0;
  StatCounter records_counter;  // worker threads may deliver concurrently
  server_config.broker.on_data = [&records_counter](const cert::DeviceId&, Bytes) {
    ++records_counter;
  };
  rng::TestRng server_seed_rng(config.seed + 2);
  proto::ConcurrentSessionBroker server(server_creds, server_seed_rng, *server_transport,
                                        server_config);
  BrokerDriver driver(server, *server_transport);

  // --- client side: one socket shared by every wave ---------------------
  std::unique_ptr<FdTransport> client_transport;
  UdpTransport* client_udp = nullptr;
  if (config.tcp) {
    auto opened = TcpStreamTransport::connect_to({.port = server_port});
    if (!opened.ok()) return opened.error();
    client_transport = std::move(opened).value();
  } else {
    auto opened = UdpTransport::open({.port = 0});
    if (!opened.ok()) return opened.error();
    client_udp = opened->get();
    client_transport = std::move(opened).value();
  }

  proto::BrokerConfig client_config;
  client_config.store.capacity = 4;
  client_config.store.policy = policy;
  client_config.reliability.enabled = true;

  const double start_ms = FdTransport::steady_now_ms();
  const double deadline_ms = start_ms + config.timeout_ms;
  const Bytes telemetry = bytes_of("soak-telemetry-record");
  std::size_t provisioned = 0;
  rng::TestRng client_provision_rng(config.seed + 3);

  while (provisioned < config.sessions) {
    // --- admit one wave ------------------------------------------------
    const std::size_t wave_size = std::min(config.wave, config.sessions - provisioned);
    std::vector<Client> wave(wave_size);
    for (std::size_t i = 0; i < wave_size; ++i) {
      const cert::DeviceId id =
          cert::DeviceId::from_string("soak-ecu-" + std::to_string(provisioned + i));
      Client& client = wave[i];
      client.creds = std::make_unique<proto::Credentials>(
          proto::provision_device(ca, id, kNow, kLifetime, client_provision_rng));
      client.rng = std::make_unique<rng::TestRng>(config.seed + 100 + provisioned + i);
      client.locked = std::make_unique<rng::LockedRng>(*client.rng);
      client.broker = std::make_unique<proto::SessionBroker>(*client.creds, *client.locked,
                                                             client_config);
      client.broker->bind_clock(client_transport.get());
      client_transport->attach(id);
      if (client_udp != nullptr) client_udp->add_route(server_creds.id, server_port);
      auto first = client.broker->connect(server_creds.id, kNow);
      if (!first.ok()) return first.error();
      const Status sent =
          client_transport->send(id, server_creds.id, std::move(first).value());
      if (!sent.ok()) return sent.error();
    }

    // --- drive the wave to completion ----------------------------------
    std::size_t wave_done = 0;
    while (wave_done < wave_size) {
      if (FdTransport::steady_now_ms() > deadline_ms) return Error::kBadState;
      // Server first: terminate handshakes, open records, send replies.
      const auto stepped = driver.step(kNow);
      if (!stepped.ok()) return stepped.error();
      if (server.broker().stats().handshakes_failed != 0) return Error::kAuthenticationFailed;
      // Then the clients: replies, retransmission timers, record bursts.
      client_transport->service();
      for (Client& client : wave) {
        if (client.done) continue;
        proto::SessionBroker& broker = *client.broker;
        for (proto::SessionBroker::Outbound& out :
             broker.poll_retransmits(client_transport->now_ms(), kNow))
          (void)client_transport->send(broker.id(), out.peer, std::move(out.message));
        while (auto datagram = client_transport->receive(broker.id())) {
          auto reply = broker.on_message(datagram->src, datagram->message, kNow);
          if (reply.ok() && reply->has_value())
            (void)client_transport->send(broker.id(), datagram->src, **reply);
        }
        if (client.records_sent < config.records_per_session &&
            broker.session_ready(server_creds.id, kNow)) {
          // Burst the records; DataRekey::kAuto piggybacks the epoch
          // ratchet exactly when the seal spends the record budget, so a
          // burst longer than the budget rekeys mid-stream on the wire.
          while (client.records_sent < config.records_per_session) {
            auto record = broker.make_data(server_creds.id, telemetry, kNow);
            if (!record.ok()) return record.error();
            (void)client_transport->send(broker.id(), server_creds.id,
                                         std::move(record).value());
            ++client.records_sent;
          }
          client.done = true;
          ++wave_done;
        }
      }
    }
    provisioned += wave_size;
    // The wave's client brokers retire here; the server keeps the sessions.
  }

  // Let the tail of in-flight records land.
  const std::size_t expect_records = config.sessions * config.records_per_session;
  const Status settled = driver.run_until(
      [&] {
        return static_cast<std::size_t>(
                   server.broker().stats().records_delivered.load()) >= expect_records;
      },
      kNow, static_cast<int>(deadline_ms - FdTransport::steady_now_ms()));
  if (!settled.ok()) return settled.error();
  records_opened = records_counter.load();

  SoakReport report;
  report.handshakes = server.broker().stats().handshakes_completed.load();
  report.records = records_opened;
  report.rekeys = server.broker().store().stats().ratchet_signals_applied.load();
  report.server_sessions = server.broker().store().active_sessions();
  report.retransmits = server.broker().stats().retransmits.load();
  report.elapsed_ms = FdTransport::steady_now_ms() - start_ms;
  report.wire_bytes = server_transport->wire_stats().bytes_received.load() +
                      server_transport->wire_stats().bytes_sent.load();
  report.wire_datagrams = server_transport->wire_stats().datagrams_received.load();
  report.send_drops = server_transport->wire_stats().send_drops.load() +
                      client_transport->wire_stats().send_drops.load();
  return report;
}

}  // namespace ecqv::net
