#include "net/event_loop.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <cerrno>
#include <cmath>

namespace ecqv::net {

EventLoop::EventLoop() : epoll_(::epoll_create1(0)) {}

Status EventLoop::watch(int fd, bool want_write) {
  if (!epoll_.valid()) return Error::kBadState;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  const auto it = interest_.find(fd);
  if (it == interest_.end()) {
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) return Error::kInternal;
    interest_.emplace(fd, want_write);
    return {};
  }
  if (it->second == want_write) return {};
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) return Error::kInternal;
  it->second = want_write;
  return {};
}

void EventLoop::unwatch(int fd) {
  if (!epoll_.valid()) return;
  if (interest_.erase(fd) != 0) (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

Result<std::vector<EventLoop::Event>> EventLoop::wait(int timeout_ms) {
  if (!epoll_.valid()) return Error::kBadState;
  epoll_event ready[64];
  const int n = ::epoll_wait(epoll_.get(), ready, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return std::vector<Event>{};  // interrupted: spin the loop
    return Error::kInternal;
  }
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event e;
    e.fd = ready[i].data.fd;
    e.readable = (ready[i].events & EPOLLIN) != 0;
    e.writable = (ready[i].events & EPOLLOUT) != 0;
    e.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    events.push_back(e);
  }
  return events;
}

BrokerDriver::BrokerDriver(proto::ConcurrentSessionBroker& broker, FdTransport& transport)
    : BrokerDriver(broker, transport, Config()) {}

BrokerDriver::BrokerDriver(proto::ConcurrentSessionBroker& broker, FdTransport& transport,
                           Config config)
    : broker_(broker), transport_(transport), config_(config) {}

Result<std::size_t> BrokerDriver::step(std::uint64_t now) {
  // Declare the current fd set every cycle: TCP transports accept and
  // reap connections between steps, and EPOLLOUT interest follows the
  // short-write backlog.
  std::vector<int> fds = transport_.poll_fds();
  for (const int fd : fds) {
    const Status watched = loop_.watch(fd, transport_.wants_write(fd));
    if (!watched.ok()) return watched.error();
  }
  // Sleep until traffic or the broker's next retransmission deadline —
  // the TimerQueue's head, read in the transport's (wall) clock.
  int timeout_ms = config_.max_wait_ms;
  if (const auto due = broker_.broker().next_retransmit_due_ms(); due.has_value()) {
    const double wait = *due - transport_.now_ms();
    timeout_ms = std::clamp(static_cast<int>(std::ceil(std::max(wait, 0.0))), 0,
                            config_.max_wait_ms);
  }
  auto events = loop_.wait(timeout_ms);
  if (!events.ok()) return events.error();
  // Dead fds get dropped from the interest set; the transport reaps the
  // connection itself during service().
  for (const EventLoop::Event& event : *events)
    if (event.error) loop_.unwatch(event.fd);
  transport_.service();
  const std::size_t dispatched = broker_.poll(now);
  broker_.drain();
  // A closed connection's fd must not linger in epoll: unwatch anything
  // the transport no longer reports.
  std::vector<int> live = transport_.poll_fds();
  if (live.size() != loop_.watched()) {
    std::sort(live.begin(), live.end());
    std::vector<int> stale;
    for (const int fd : fds)
      if (!std::binary_search(live.begin(), live.end(), fd)) stale.push_back(fd);
    for (const int fd : stale) loop_.unwatch(fd);
  }
  return dispatched;
}

Status BrokerDriver::run_until(const std::function<bool()>& done, std::uint64_t now,
                               int timeout_ms) {
  const double deadline = FdTransport::steady_now_ms() + timeout_ms;
  while (!done()) {
    if (FdTransport::steady_now_ms() > deadline) return Error::kBadState;
    const auto stepped = step(now);
    if (!stepped.ok()) return stepped.error();
  }
  return {};
}

}  // namespace ecqv::net
