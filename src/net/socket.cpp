#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ecqv::net {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Error::kInternal;
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return Error::kInternal;
  return {};
}

Status set_send_buffer(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes) < 0)
    return Error::kInternal;
  return {};
}

Status set_receive_buffer(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes) < 0)
    return Error::kInternal;
  return {};
}

Result<Fd> udp_bind_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return Error::kInternal;
  const sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0)
    return Error::kBadState;
  if (const Status s = set_nonblocking(fd.get()); !s.ok()) return s.error();
  return fd;
}

Result<Fd> tcp_listen_loopback(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Error::kInternal;
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0)
    return Error::kBadState;
  if (::listen(fd.get(), backlog) < 0) return Error::kBadState;
  if (const Status s = set_nonblocking(fd.get()); !s.ok()) return s.error();
  return fd;
}

Result<Fd> tcp_connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Error::kInternal;
  if (const Status s = set_nonblocking(fd.get()); !s.ok()) return s.error();
  const sockaddr_in addr = loopback(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno != EINPROGRESS) return Error::kBadState;
  return fd;
}

Result<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    return Error::kInternal;
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

}  // namespace ecqv::net
