#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace ecqv::net {

namespace {

sockaddr_in loopback_route(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Result<std::unique_ptr<UdpTransport>> UdpTransport::open(Config config) {
  auto fd = udp_bind_loopback(config.port);
  if (!fd.ok()) return fd.error();
  if (config.buffer_bytes > 0) {
    if (const Status s = set_receive_buffer(fd->get(), config.buffer_bytes); !s.ok())
      return s.error();
    if (const Status s = set_send_buffer(fd->get(), config.buffer_bytes); !s.ok())
      return s.error();
  }
  auto bound = local_port(fd->get());
  if (!bound.ok()) return bound.error();
  return std::unique_ptr<UdpTransport>(
      new UdpTransport(std::move(fd).value(), bound.value(), config));
}

UdpTransport::UdpTransport(Fd fd, std::uint16_t port, const Config& config)
    : fd_(std::move(fd)), port_(port) {
  mutex_.enable(config.concurrent);
}

void UdpTransport::add_route(const cert::DeviceId& dst, std::uint16_t port) {
  MutexLock lock(mutex_);
  routes_[dst] = loopback_route(port);
}

void UdpTransport::attach(const cert::DeviceId& endpoint) {
  MutexLock lock(mutex_);
  inboxes_.try_emplace(endpoint);
}

Status UdpTransport::send(const cert::DeviceId& src, const cert::DeviceId& dst,
                          const proto::Message& message) {
  sockaddr_in route{};
  {
    MutexLock lock(mutex_);
    if (inboxes_.find(src) == inboxes_.end()) return Error::kBadState;
    const auto it = routes_.find(dst);
    if (it == routes_.end()) {
      ++stats_.unroutable;
      return Error::kBadState;
    }
    route = it->second;
  }
  const std::uint16_t tag = session_counter_.fetch_add(1, std::memory_order_relaxed);
  const Bytes wire = encode_datagram(proto::Datagram{src, dst, message}, tag);
  ssize_t sent;
  do {
    sent = ::sendto(fd_.get(), wire.data(), wire.size(), 0,
                    reinterpret_cast<const sockaddr*>(&route), sizeof route);
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
        errno == ECONNREFUSED) {
      // The datagram is lost, not the transport: kernel backpressure and
      // dead peers are link loss, the reliability engine's department.
      ++wire_stats_.send_drops;
      return {};
    }
    return Error::kInternal;
  }
  ++wire_stats_.datagrams_sent;
  wire_stats_.bytes_sent += wire.size();
  return {};
}

std::size_t UdpTransport::service() {
  std::size_t decoded = 0;
  std::uint8_t buffer[kMaxDatagramBytes + 1];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    ssize_t got;
    do {
      got = ::recvfrom(fd_.get(), buffer, sizeof buffer, 0,
                       reinterpret_cast<sockaddr*>(&from), &from_len);
    } while (got < 0 && errno == EINTR);
    if (got < 0) break;  // EAGAIN: socket drained
    wire_stats_.bytes_received += static_cast<std::size_t>(got);
    auto datagram = decode_datagram(ByteView(buffer, static_cast<std::size_t>(got)));
    if (!datagram.ok()) {
      ++wire_stats_.decode_errors;
      continue;
    }
    MutexLock lock(mutex_);
    // Learn the way back: the sender's bound address is the route to its
    // source id (refreshed every datagram, so rebinding peers heal).
    routes_[datagram->src] = from;
    const auto inbox = inboxes_.find(datagram->dst);
    if (inbox == inboxes_.end()) {
      ++stats_.unknown_destination;
      continue;
    }
    inbox->second.push_back(std::move(datagram).value());
    ++wire_stats_.datagrams_received;
    ++decoded;
  }
  return decoded;
}

std::optional<proto::Datagram> UdpTransport::receive(const cert::DeviceId& dst) {
  service();
  MutexLock lock(mutex_);
  const auto inbox = inboxes_.find(dst);
  if (inbox == inboxes_.end() || inbox->second.empty()) return std::nullopt;
  proto::Datagram out = std::move(inbox->second.front());
  inbox->second.pop_front();
  return out;
}

bool UdpTransport::idle() {
  service();
  MutexLock lock(mutex_);
  for (const auto& [id, inbox] : inboxes_)
    if (!inbox.empty()) return false;
  return true;
}

}  // namespace ecqv::net
