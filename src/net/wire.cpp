#include "net/wire.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecqv::net {

Bytes encode_datagram(const proto::Datagram& datagram, std::uint16_t session_id) {
  Bytes out;
  const Bytes pdu = can::wrap_fabric(datagram.message, session_id).encode();
  out.reserve(2 * cert::kDeviceIdSize + pdu.size());
  out.insert(out.end(), datagram.src.bytes.begin(), datagram.src.bytes.end());
  out.insert(out.end(), datagram.dst.bytes.begin(), datagram.dst.bytes.end());
  out.insert(out.end(), pdu.begin(), pdu.end());
  return out;
}

Result<proto::Datagram> decode_datagram(ByteView bytes) {
  if (bytes.size() < kDatagramHeaderSize) return Error::kBadLength;
  if (bytes.size() > kMaxDatagramBytes) return Error::kBadLength;
  proto::Datagram datagram;
  std::copy_n(bytes.begin(), cert::kDeviceIdSize, datagram.src.bytes.begin());
  std::copy_n(bytes.begin() + cert::kDeviceIdSize, cert::kDeviceIdSize,
              datagram.dst.bytes.begin());
  auto pdu = can::AppPdu::decode(bytes.subspan(2 * cert::kDeviceIdSize));
  if (!pdu.ok()) return pdu.error();
  // step_for_op_code throws on op codes outside the fabric vocabulary —
  // for socket-facing decode of untrusted bytes that is a decode failure,
  // not a programming error (same stance as the CAN-FD receive path).
  try {
    auto message = can::unwrap_fabric(pdu.value());
    if (!message.ok()) return message.error();
    datagram.message = std::move(message).value();
  } catch (const std::invalid_argument&) {
    return Error::kDecodeFailed;
  }
  return datagram;
}

void append_frame(Bytes& out, ByteView payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(n >> 24));
  out.push_back(static_cast<std::uint8_t>(n >> 16));
  out.push_back(static_cast<std::uint8_t>(n >> 8));
  out.push_back(static_cast<std::uint8_t>(n));
  out.insert(out.end(), payload.begin(), payload.end());
}

Status StreamDecoder::feed(ByteView chunk) {
  if (poisoned_) return Error::kBadLength;
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  extract_frames();
  if (poisoned_) return Error::kBadLength;
  return {};
}

std::optional<Bytes> StreamDecoder::next_frame() {
  if (frames_.empty()) return std::nullopt;
  Bytes out = std::move(frames_.front());
  frames_.pop_front();
  return out;
}

void StreamDecoder::extract_frames() {
  while (buffer_.size() - consumed_ >= kFramePrefixSize) {
    const std::uint8_t* p = buffer_.data() + consumed_;
    const std::uint32_t declared = (static_cast<std::uint32_t>(p[0]) << 24) |
                                   (static_cast<std::uint32_t>(p[1]) << 16) |
                                   (static_cast<std::uint32_t>(p[2]) << 8) |
                                   static_cast<std::uint32_t>(p[3]);
    if (declared == 0 || declared > max_frame_bytes_) {
      // Framing violation: nothing downstream of a bad length can be
      // trusted to re-synchronize, so the decoder refuses everything from
      // here on and the owner drops the connection.
      poisoned_ = true;
      return;
    }
    if (buffer_.size() - consumed_ < kFramePrefixSize + declared) break;
    frames_.emplace_back(p + kFramePrefixSize, p + kFramePrefixSize + declared);
    consumed_ += kFramePrefixSize + declared;
    ++frames_decoded_;
  }
  compact();
}

void StreamDecoder::compact() {
  // Reclaim the parsed prefix only once it dominates the buffer, so a
  // steady frame stream does not pay a memmove per frame.
  if (consumed_ == 0) return;
  if (consumed_ < buffer_.size() / 2 && buffer_.size() < 64 * 1024) return;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

}  // namespace ecqv::net
