// Epoll readiness loop: the blocking heart of the network data plane.
//
// The simulated fabrics poll — pump_endpoints() and run_until_idle() spin
// until the link reports idle, which works when the transport IS the
// simulation. A kernel socket has no such oracle: readiness arrives
// asynchronously, so the loop must block on epoll and wake for exactly two
// reasons — a socket became readable/writable, or a broker retransmission
// deadline (PR 6's TimerQueue, surfaced as next_retransmit_due_ms())
// expired. The epoll timeout IS the timer queue's next deadline: no
// polling tick, no latency floor beyond the kernel's.
//
// EventLoop is the thin epoll wrapper; BrokerDriver binds one
// ConcurrentSessionBroker to one FdTransport and turns socket readiness
// into broker poll()/drain() cycles — the socket-world replacement for the
// pump_endpoints() loop.
#pragma once

#include <functional>
#include <unordered_map>

#include "core/concurrent_broker.hpp"
#include "net/fd_transport.hpp"
#include "net/socket.hpp"

namespace ecqv::net {

class EventLoop {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  // EPOLLERR/EPOLLHUP
  };

  EventLoop();

  /// False when epoll_create1 failed at construction (fd exhaustion) —
  /// every other call then fails kBadState.
  [[nodiscard]] bool valid() const { return epoll_.valid(); }

  /// Adds or updates interest in `fd` (modify-if-exists semantics, so
  /// callers just declare current interest every iteration).
  Status watch(int fd, bool want_write);
  void unwatch(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever, 0 = poll) for readiness.
  /// Returns the ready set — empty on timeout. EINTR returns empty rather
  /// than erroring: the caller's loop just comes around again.
  Result<std::vector<Event>> wait(int timeout_ms);

  [[nodiscard]] std::size_t watched() const { return interest_.size(); }

 private:
  Fd epoll_;
  std::unordered_map<int, bool> interest_;  // fd -> want_write
};

/// Binds a worker-pool broker to its socket transport: declares fd
/// interest from the transport (EPOLLOUT only where short writes left
/// backlog), blocks on epoll with the broker's next retransmission
/// deadline as the timeout, and runs service() + poll() + drain() per
/// wakeup. One driver per (broker, transport) pair; a process hosting
/// several brokers runs one driver each or shares an EventLoop manually.
class BrokerDriver {
 public:
  struct Config {
    /// Ceiling on one epoll_wait block, so run_until() re-checks its
    /// predicate even with no traffic and no armed timers.
    int max_wait_ms = 20;
  };

  BrokerDriver(proto::ConcurrentSessionBroker& broker, FdTransport& transport);
  BrokerDriver(proto::ConcurrentSessionBroker& broker, FdTransport& transport, Config config);

  /// One readiness cycle: epoll_wait (timeout = min(next retransmission
  /// deadline, max_wait_ms)), transport.service(), broker poll+drain.
  /// Returns the number of datagrams the broker dispatched.
  Result<std::size_t> step(std::uint64_t now);

  /// Runs step() until `done()` returns true or `timeout_ms` of wall time
  /// elapses. Returns kBadState on timeout — a soak that did not converge
  /// is a failure, not a hang.
  Status run_until(const std::function<bool()>& done, std::uint64_t now, int timeout_ms);

  [[nodiscard]] EventLoop& loop() { return loop_; }

 private:
  proto::ConcurrentSessionBroker& broker_;
  FdTransport& transport_;
  EventLoop loop_;
  Config config_;
};

}  // namespace ecqv::net
