// Thin POSIX socket layer: RAII fds and the handful of loopback-oriented
// helpers the net transports need. Everything is non-blocking and
// EINTR-safe; errors surface as the library's Status/Result codes, never
// errno leaking into callers.
#pragma once

#include <cstdint>

#include "common/result.hpp"

namespace ecqv::net {

/// Owning file descriptor. Move-only; closes on destruction (retrying
/// close() through EINTR is deliberately not done — POSIX leaves the fd
/// state undefined and Linux always releases it).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Non-blocking IPv4 UDP socket bound to 127.0.0.1:`port` (0 = ephemeral).
Result<Fd> udp_bind_loopback(std::uint16_t port);

/// Non-blocking IPv4 TCP listener on 127.0.0.1:`port` (0 = ephemeral),
/// SO_REUSEADDR set.
Result<Fd> tcp_listen_loopback(std::uint16_t port, int backlog = 128);

/// Non-blocking IPv4 TCP connect to 127.0.0.1:`port`. May return before
/// the handshake completes (EINPROGRESS) — the fd becomes writable when
/// established, which the transports' service loop absorbs naturally.
Result<Fd> tcp_connect_loopback(std::uint16_t port);

/// The port the kernel actually bound (resolves port 0 requests).
Result<std::uint16_t> local_port(int fd);

Status set_nonblocking(int fd);

/// Shrinks the socket send buffer (tests use this to force short writes).
Status set_send_buffer(int fd, int bytes);

/// Sizes the socket receive buffer (the kernel clamps to rmem_max). A UDP
/// fleet socket needs headroom for a whole wave of replies landing while
/// the servicing thread is busy elsewhere — the 208 KiB default holds only
/// ~80 handshake messages.
Status set_receive_buffer(int fd, int bytes);

}  // namespace ecqv::net
