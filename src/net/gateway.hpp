// Fleet gateway: bridges a vehicle-side CAN-FD domain onto IP backhaul.
//
// The paper's deployment picture (§V) has ECUs speaking the session
// protocol on the in-vehicle bus while the fleet backend lives across a
// network link. This gateway is that edge box: on the bus it impersonates
// the backend's fabric address (ECUs address the backend directly, unaware
// of any bridging); on the backhaul it impersonates each ECU it has seen.
// Because the CAN-FD session layer and the IP wire format carry the SAME
// fabric bytes (net/wire.hpp == src/canfd framing above ISO-TP), bridging
// is pure re-framing — the gateway never parses, buffers, or re-encodes
// protocol payload, and end-to-end security is untouched: handshake
// transcripts and sealed records cross it opaquely (a malicious gateway is
// just a MITM the STS handshake already defeats).
//
// Direction by address, not by port: anything the bus delivers FOR the
// backend goes out the backhaul; anything the backhaul delivers FOR a
// known ECU goes onto the bus.
#pragma once

#include <vector>

#include "core/transport.hpp"

namespace ecqv::net {

class FleetGateway {
 public:
  struct Config {
    /// The remote backend's fabric id — the address the gateway claims on
    /// the bus side.
    cert::DeviceId backend_id;
  };

  struct Stats {
    StatCounter to_backhaul = 0;  // bus → IP datagrams bridged
    StatCounter to_bus = 0;       // IP → bus datagrams bridged
    StatCounter ecus_learned = 0;
    StatCounter send_errors = 0;  // a leg refused a bridged datagram
  };

  /// Attaches the backend's address on the bus side. The backhaul
  /// transport must already be able to route to `backend_id` (static
  /// route or learned).
  FleetGateway(proto::Transport& bus, proto::Transport& backhaul, Config config);

  /// Pre-registers an ECU (attached on the backhaul so backend replies can
  /// land). ECUs are otherwise learned from their first bus-side datagram.
  void add_ecu(const cert::DeviceId& ecu);

  /// Bridges everything currently deliverable, both directions. Returns
  /// the number of datagrams moved.
  std::size_t pump();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<cert::DeviceId>& ecus() const { return ecus_; }

 private:
  void learn_ecu(const cert::DeviceId& ecu);

  proto::Transport& bus_;
  proto::Transport& backhaul_;
  Config config_;
  std::vector<cert::DeviceId> ecus_;
  Stats stats_;
};

}  // namespace ecqv::net
