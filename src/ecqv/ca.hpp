// Certificate authority for ECQV enrollment (paper Fig. 1: the "Central
// Authority" / gateway device).
//
// The CA owns the root key pair (d_CA, Q_CA), hands out implicit
// certificates, and tracks serial numbers. Certificate *sessions* (paper
// §II-A: the validity window of the currently issued certificates, e.g. one
// engine start) are modeled by the validity horizon passed at issuance and
// by reissue().
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "ecdsa/ecdsa.hpp"
#include "ecqv/certificate.hpp"
#include "ecqv/scheme.hpp"
#include "rng/rng.hpp"

namespace ecqv::cert {

/// What the CA returns to the requester: the implicit certificate plus the
/// private-key contribution r (SEC4 calls it the "private key reconstruction
/// data").
struct IssuedCertificate {
  Certificate certificate;
  bi::U256 r;
};

class CertificateAuthority {
 public:
  /// Creates a CA with a fresh root key.
  CertificateAuthority(DeviceId id, rng::Rng& rng);

  /// Creates a CA from an existing root private key (fleet provisioning,
  /// tests).
  CertificateAuthority(DeviceId id, const bi::U256& root_private_key);

  [[nodiscard]] const DeviceId& id() const { return id_; }
  [[nodiscard]] const ec::AffinePoint& public_key() const { return q_ca_; }

  /// Issues an implicit certificate for `subject` from its request point
  /// R_U. Validity window is [now, now + lifetime]. Rejects off-curve
  /// request points (a malicious R_U would otherwise poison the scheme).
  Result<IssuedCertificate> issue(const DeviceId& subject, const ec::AffinePoint& ru,
                                  std::uint64_t now, std::uint64_t lifetime_seconds,
                                  rng::Rng& rng);

  /// Convenience wrapper for a full enrollment round-trip performed locally
  /// (request + issue + reconstruct). Used by tests, examples and the
  /// session layer when provisioning simulated devices.
  struct Enrollment {
    Certificate certificate;
    bi::U256 private_key;
    ec::AffinePoint public_key;
  };
  Result<Enrollment> enroll(const DeviceId& subject, std::uint64_t now,
                            std::uint64_t lifetime_seconds, rng::Rng& rng);

  /// Number of certificates issued so far (also the next serial number).
  [[nodiscard]] std::uint64_t issued_count() const { return next_serial_; }

 private:
  DeviceId id_;
  bi::U256 d_ca_;
  ec::AffinePoint q_ca_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace ecqv::cert
