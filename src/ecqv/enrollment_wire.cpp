#include "ecqv/enrollment_wire.hpp"

#include <algorithm>

#include "ec/encoding.hpp"

namespace ecqv::cert {

Bytes EnrollmentRequest::encode() const {
  return concat({ByteView(subject.bytes), ByteView(ec::encode_compressed(ru))});
}

Result<EnrollmentRequest> EnrollmentRequest::decode(ByteView data) {
  if (data.size() != kEnrollmentRequestSize) return Error::kBadLength;
  EnrollmentRequest request;
  std::copy_n(data.begin(), kDeviceIdSize, request.subject.bytes.begin());
  auto point = ec::decode_point(ec::Curve::p256(), data.subspan(kDeviceIdSize));
  if (!point) return point.error();
  request.ru = point.value();
  return request;
}

Bytes EnrollmentResponse::encode() const {
  return concat({ByteView(certificate.encode()), ByteView(bi::to_be_bytes(r))});
}

Result<EnrollmentResponse> EnrollmentResponse::decode(ByteView data) {
  if (data.size() != kEnrollmentResponseSize) return Error::kBadLength;
  auto certificate = Certificate::decode(data.subspan(0, kCertificateSize));
  if (!certificate) return certificate.error();
  EnrollmentResponse response;
  response.certificate = certificate.value();
  response.r = bi::from_be_bytes(data.subspan(kCertificateSize));
  if (response.r.is_zero() || bi::cmp(response.r, ec::Curve::p256().order()) >= 0)
    return Error::kDecodeFailed;
  return response;
}

Result<Bytes> handle_enrollment(CertificateAuthority& ca, ByteView request_bytes,
                                std::uint64_t now, std::uint64_t lifetime_seconds,
                                rng::Rng& rng) {
  auto request = EnrollmentRequest::decode(request_bytes);
  if (!request) return request.error();
  auto issued = ca.issue(request->subject, request->ru, now, lifetime_seconds, rng);
  if (!issued) return issued.error();
  return EnrollmentResponse{issued->certificate, issued->r}.encode();
}

Result<ReconstructedKey> complete_enrollment(const CertRequest& request,
                                             ByteView response_bytes,
                                             const ec::AffinePoint& q_ca,
                                             Certificate* certificate_out) {
  auto response = EnrollmentResponse::decode(response_bytes);
  if (!response) return response.error();
  if (!(response->certificate.subject == request.subject)) return Error::kAuthenticationFailed;
  auto key = reconstruct_private_key(response->certificate, request.ku, response->r, q_ca);
  if (!key) return key.error();
  if (certificate_out != nullptr) *certificate_out = response->certificate;
  return key;
}

}  // namespace ecqv::cert
