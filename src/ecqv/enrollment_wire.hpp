// Wire format for the certificate derivation phase (paper Fig. 1, stages
// 1-2): what actually travels between a device and the CA gateway during
// enrollment, sized for constrained links.
//
//   request : subject id (16) || R_U compressed (33)            = 49 B
//   response: certificate (101) || r (32)                       = 133 B
//
// The response is deliberately *not* signed: ECQV's implicit verification
// (reconstruct, then check Q_U == e*P_U + Q_CA) detects any tampering with
// either field, which the tests demonstrate. Transport privacy/authenticity
// of the enrollment channel itself is the deployment phase's problem
// (paper §II: "device authentication and deployment").
#pragma once

#include "common/result.hpp"
#include "ecqv/ca.hpp"
#include "ecqv/scheme.hpp"

namespace ecqv::cert {

inline constexpr std::size_t kEnrollmentRequestSize = kDeviceIdSize + 33;
inline constexpr std::size_t kEnrollmentResponseSize = kCertificateSize + 32;

struct EnrollmentRequest {
  DeviceId subject;
  ec::AffinePoint ru;

  [[nodiscard]] Bytes encode() const;
  static Result<EnrollmentRequest> decode(ByteView data);
};

struct EnrollmentResponse {
  Certificate certificate;
  bi::U256 r;

  [[nodiscard]] Bytes encode() const;
  static Result<EnrollmentResponse> decode(ByteView data);
};

/// CA side: decode a request, issue, encode the response.
Result<Bytes> handle_enrollment(CertificateAuthority& ca, ByteView request_bytes,
                                std::uint64_t now, std::uint64_t lifetime_seconds,
                                rng::Rng& rng);

/// Device side: decode the response and reconstruct the key pair, verifying
/// implicitly against the CA public key. `request` is the local state kept
/// from make_cert_request().
Result<ReconstructedKey> complete_enrollment(const CertRequest& request,
                                             ByteView response_bytes,
                                             const ec::AffinePoint& q_ca,
                                             Certificate* certificate_out = nullptr);

}  // namespace ecqv::cert
