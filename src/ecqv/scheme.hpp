// The ECQV implicit certificate scheme (SEC4 §2.4–2.7).
//
// Roles and flow (paper Fig. 1, stages 1–2):
//
//   requester U                      certificate authority CA
//   ----------------                 ------------------------
//   k_U ∈R [1,n-1]
//   R_U = k_U·G          --(ID_U, R_U)-->
//                                     k ∈R [1,n-1]
//                                     P_U = R_U + k·G
//                                     Cert_U = Encode(P_U, ID_U, meta)
//                                     e = Hn(Cert_U)
//                                     r = e·k + d_CA  mod n
//                        <--(Cert_U, r)--
//   e = Hn(Cert_U)
//   d_U = e·k_U + r  mod n            (private key reconstruction)
//   Q_U = d_U·G
//   check Q_U == e·P_U + Q_CA         (implicit verification)
//
// Any third party later derives U's public key from the certificate alone:
//   Q_U = Hn(Cert_U)·P_U + Q_CA       (paper eq. (1))
#pragma once

#include <vector>

#include "common/result.hpp"
#include "ec/curve.hpp"
#include "ecqv/certificate.hpp"
#include "rng/rng.hpp"

namespace ecqv::cert {

/// Requester-side state for one certificate enrollment. `ku` is secret and
/// must not leave the device.
struct CertRequest {
  DeviceId subject;
  bi::U256 ku;           // request secret k_U
  ec::AffinePoint ru;    // R_U = k_U * G
};

/// Starts an enrollment: fresh k_U and R_U.
CertRequest make_cert_request(const DeviceId& subject, rng::Rng& rng);

/// Result of private key reconstruction on the requester.
struct ReconstructedKey {
  bi::U256 private_key;       // d_U
  ec::AffinePoint public_key; // Q_U = d_U * G
};

/// e = Hn(Cert): the certificate's hash scalar (paper eq. (1) "Hash(Cert)").
bi::U256 cert_hash_scalar(const Certificate& certificate);

/// Requester-side key reconstruction and implicit verification.
/// `r` is the CA's private-key contribution; `q_ca` the CA public key.
/// Fails with kAuthenticationFailed when Q_U != e*P_U + Q_CA (i.e. the
/// certificate was not issued by this CA for this request).
Result<ReconstructedKey> reconstruct_private_key(const Certificate& certificate,
                                                 const bi::U256& ku, const bi::U256& r,
                                                 const ec::AffinePoint& q_ca);

/// Third-party public key extraction (paper eq. (1)); the operation that
/// makes the certificate "implicit". Validates the reconstruction point.
Result<ec::AffinePoint> extract_public_key(const Certificate& certificate,
                                           const ec::AffinePoint& q_ca);

/// Batch public key extraction for fleet workloads: computes every
/// certificate's e·P_U + Q_CA in Jacobian form and normalizes the whole
/// batch to affine with ONE shared field inversion (Montgomery's trick)
/// instead of the two per-certificate inversions the single-cert path pays.
/// Results are per-certificate so one malformed certificate cannot poison
/// the batch; entry i corresponds to certificates[i] and matches
/// extract_public_key(certificates[i], q_ca) exactly.
std::vector<Result<ec::AffinePoint>> extract_public_keys(
    const std::vector<Certificate>& certificates, const ec::AffinePoint& q_ca);

}  // namespace ecqv::cert
