#include "ecqv/certificate.hpp"

#include <algorithm>

namespace ecqv::cert {

DeviceId DeviceId::from_string(std::string_view name) {
  DeviceId id;
  const std::size_t n = std::min(name.size(), kDeviceIdSize);
  std::copy_n(name.begin(), n, id.bytes.begin());
  return id;
}

std::string DeviceId::to_string() const {
  std::string out;
  for (std::uint8_t b : bytes) {
    if (b == 0) break;
    out.push_back(b >= 0x20 && b < 0x7f ? static_cast<char>(b) : '?');
  }
  return out;
}

Bytes Certificate::encode() const {
  Bytes out(kCertificateSize);
  ByteSpan s(out);
  out[0] = version;
  store_be64(s.subspan(1, 8), serial);
  std::copy(issuer.bytes.begin(), issuer.bytes.end(), out.begin() + 9);
  std::copy(subject.bytes.begin(), subject.bytes.end(), out.begin() + 25);
  store_be64(s.subspan(41, 8), valid_from);
  store_be64(s.subspan(49, 8), valid_to);
  out[57] = curve_id;
  store_be16(s.subspan(58, 2), key_usage);
  const Bytes point = ec::encode_compressed(reconstruction_point);
  std::copy(point.begin(), point.end(), out.begin() + 60);
  std::copy(reserved.begin(), reserved.end(), out.begin() + 93);
  return out;
}

Result<Certificate> Certificate::decode(ByteView data) {
  if (data.size() != kCertificateSize) return Error::kBadLength;
  Certificate c;
  c.version = data[0];
  if (c.version != kVersion1) return Error::kDecodeFailed;
  c.serial = load_be64(data.subspan(1, 8));
  std::copy_n(data.begin() + 9, kDeviceIdSize, c.issuer.bytes.begin());
  std::copy_n(data.begin() + 25, kDeviceIdSize, c.subject.bytes.begin());
  c.valid_from = load_be64(data.subspan(41, 8));
  c.valid_to = load_be64(data.subspan(49, 8));
  c.curve_id = data[57];
  if (c.curve_id != kCurveSecp256r1) return Error::kDecodeFailed;
  c.key_usage = load_be16(data.subspan(58, 2));
  auto point = ec::decode_point(ec::Curve::p256(), data.subspan(60, 33));
  if (!point) return point.error();
  c.reconstruction_point = point.value();
  std::copy_n(data.begin() + 93, 8, c.reserved.begin());
  return c;
}

bool Certificate::valid_at(std::uint64_t unix_seconds) const {
  return valid_from <= unix_seconds && unix_seconds <= valid_to;
}

}  // namespace ecqv::cert
