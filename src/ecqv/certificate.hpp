// ECQV implicit certificate: the 101-byte minimal encoding.
//
// The paper (§V-B) assumes "the minimal certificate encoding with 101 total
// bytes [7]" — [7] being SEC4. SEC4 leaves the certificate structure to the
// profile; this library fixes the following fixed-width layout, which sums
// to exactly 101 bytes and carries everything the protocols need:
//
//   offset  size  field
//        0     1  version              (0x01)
//        1     8  serial               (big-endian)
//        9    16  issuer id
//       25    16  subject id
//       41     8  valid_from           (unix seconds, big-endian)
//       49     8  valid_to             (unix seconds, big-endian)
//       57     1  curve id             (0x01 = secp256r1)
//       58     2  key usage flags
//       60    33  public-key reconstruction point P_U (SEC1 compressed)
//       93     8  reserved / profile extension
//     ----  ----
//             101
//
// An implicit certificate carries no CA signature — authenticity is
// established arithmetically when the reconstructed public key is used
// successfully (paper eq. (1)); that is the entire size advantage over
// X.509.
#pragma once

#include <array>
#include <cstdint>

#include "common/result.hpp"
#include "ec/curve.hpp"
#include "ec/encoding.hpp"

namespace ecqv::cert {

inline constexpr std::size_t kDeviceIdSize = 16;
inline constexpr std::size_t kCertificateSize = 101;
inline constexpr std::uint8_t kVersion1 = 0x01;
inline constexpr std::uint8_t kCurveSecp256r1 = 0x01;

/// 16-byte device identity (paper §V-B: "IDs to be of 16 bytes").
struct DeviceId {
  std::array<std::uint8_t, kDeviceIdSize> bytes{};

  static DeviceId from_string(std::string_view name);  // zero-padded/truncated
  [[nodiscard]] std::string to_string() const;         // printable, trimmed
  auto operator<=>(const DeviceId&) const = default;
};

/// Key-usage flag bits carried in the certificate.
enum KeyUsage : std::uint16_t {
  kUsageKeyAgreement = 0x0001,
  kUsageSignature = 0x0002,
};

struct Certificate {
  std::uint8_t version = kVersion1;
  std::uint64_t serial = 0;
  DeviceId issuer;
  DeviceId subject;
  std::uint64_t valid_from = 0;
  std::uint64_t valid_to = 0;
  std::uint8_t curve_id = kCurveSecp256r1;
  std::uint16_t key_usage = kUsageKeyAgreement | kUsageSignature;
  ec::AffinePoint reconstruction_point;  // P_U
  std::array<std::uint8_t, 8> reserved{};

  /// Fixed 101-byte encoding (the hash input for e = Hn(Cert)).
  [[nodiscard]] Bytes encode() const;

  /// Strict decode: size, version, curve id and point validity enforced.
  static Result<Certificate> decode(ByteView data);

  /// Validity-window check against a unix timestamp.
  [[nodiscard]] bool valid_at(std::uint64_t unix_seconds) const;

  bool operator==(const Certificate&) const = default;
};

}  // namespace ecqv::cert
