#include "ecqv/scheme.hpp"
#include "ec/fixed_base.hpp"

namespace ecqv::cert {

namespace {
const ec::Curve& curve() { return ec::Curve::p256(); }
}  // namespace

CertRequest make_cert_request(const DeviceId& subject, rng::Rng& rng) {
  CertRequest req;
  req.subject = subject;
  req.ku = curve().random_scalar(rng);
  req.ru = ec::FixedBaseTable::p256().mul(req.ku);
  return req;
}

bi::U256 cert_hash_scalar(const Certificate& certificate) {
  return curve().hash_to_scalar(certificate.encode());
}

Result<ReconstructedKey> reconstruct_private_key(const Certificate& certificate,
                                                 const bi::U256& ku, const bi::U256& r,
                                                 const ec::AffinePoint& q_ca) {
  const auto& fn = curve().fn();
  if (r.is_zero() || bi::cmp(r, curve().order()) >= 0) return Error::kDecodeFailed;
  const bi::U256 e = cert_hash_scalar(certificate);
  // d_U = e * k_U + r mod n
  const bi::U256 eku = fn.from_mont(fn.mul(fn.to_mont(e), fn.to_mont(ku)));
  const bi::U256 du = fn.add(eku, r);
  if (du.is_zero()) return Error::kInternal;  // negligible probability
  const ec::AffinePoint qu = ec::FixedBaseTable::p256().mul(du);
  // Implicit verification: Q_U must equal e*P_U + Q_CA.
  auto expected = extract_public_key(certificate, q_ca);
  if (!expected) return expected.error();
  if (!(qu == expected.value())) return Error::kAuthenticationFailed;
  return ReconstructedKey{du, qu};
}

Result<ec::AffinePoint> extract_public_key(const Certificate& certificate,
                                           const ec::AffinePoint& q_ca) {
  const ec::AffinePoint& pu = certificate.reconstruction_point;
  if (pu.infinity || !curve().is_on_curve(pu)) return Error::kInvalidPoint;
  if (q_ca.infinity || !curve().is_on_curve(q_ca)) return Error::kInvalidPoint;
  const bi::U256 e = cert_hash_scalar(certificate);
  const ec::AffinePoint epu = curve().mul_vartime(e, pu);
  const ec::AffinePoint qu = curve().add(epu, q_ca);
  if (qu.infinity) return Error::kInvalidPoint;
  return qu;
}

}  // namespace ecqv::cert
