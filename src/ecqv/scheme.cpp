#include "ecqv/scheme.hpp"

#include "common/metrics.hpp"
#include "ec/fixed_base.hpp"
#include "ec/jacobian.hpp"

namespace ecqv::cert {

namespace {
const ec::Curve& curve() { return ec::Curve::p256(); }
}  // namespace

CertRequest make_cert_request(const DeviceId& subject, rng::Rng& rng) {
  CertRequest req;
  req.subject = subject;
  req.ku = curve().random_scalar(rng);
  req.ru = ec::FixedBaseTable::p256().mul(req.ku);
  return req;
}

bi::U256 cert_hash_scalar(const Certificate& certificate) {
  return curve().hash_to_scalar(certificate.encode());
}

Result<ReconstructedKey> reconstruct_private_key(const Certificate& certificate,
                                                 const bi::U256& ku, const bi::U256& r,
                                                 const ec::AffinePoint& q_ca) {
  const auto& fn = curve().fn();
  if (r.is_zero() || bi::cmp(r, curve().order()) >= 0) return Error::kDecodeFailed;
  const bi::U256 e = cert_hash_scalar(certificate);
  // d_U = e * k_U + r mod n
  const bi::U256 eku = fn.from_mont(fn.mul(fn.to_mont(e), fn.to_mont(ku)));
  const bi::U256 du = fn.add(eku, r);
  if (du.is_zero()) return Error::kInternal;  // negligible probability
  const ec::AffinePoint qu = ec::FixedBaseTable::p256().mul(du);
  // Implicit verification: Q_U must equal e*P_U + Q_CA.
  auto expected = extract_public_key(certificate, q_ca);
  if (!expected) return expected.error();
  if (!(qu == expected.value())) return Error::kAuthenticationFailed;
  return ReconstructedKey{du, qu};
}

Result<ec::AffinePoint> extract_public_key(const Certificate& certificate,
                                           const ec::AffinePoint& q_ca) {
  const ec::AffinePoint& pu = certificate.reconstruction_point;
  if (pu.infinity || !curve().is_on_curve(pu)) return Error::kInvalidPoint;
  if (q_ca.infinity || !curve().is_on_curve(q_ca)) return Error::kInvalidPoint;
  const bi::U256 e = cert_hash_scalar(certificate);
  const ec::AffinePoint epu = curve().mul_vartime(e, pu);
  const ec::AffinePoint qu = curve().add(epu, q_ca);
  if (qu.infinity) return Error::kInvalidPoint;
  return qu;
}

std::vector<Result<ec::AffinePoint>> extract_public_keys(
    const std::vector<Certificate>& certificates, const ec::AffinePoint& q_ca) {
  const ec::Curve& c = curve();
  const ec::CurveOps& o = c.ops();

  std::vector<Result<ec::AffinePoint>> out;
  out.reserve(certificates.size());
  if (q_ca.infinity || !c.is_on_curve(q_ca)) {
    out.assign(certificates.size(), Error::kInvalidPoint);
    return out;
  }
  const ec::CurveOps::AffineM ca_mont{c.fp().to_mont(q_ca.x), c.fp().to_mont(q_ca.y)};

  // Phase 1: every valid certificate's odd-multiple table of P_U in
  // Jacobian form, normalized together with ONE shared inversion (the
  // single-cert path pays one inversion per certificate here).
  constexpr std::size_t kTabSize = ec::CurveOps::kVarTableSize;
  std::vector<ec::CurveOps::JPoint> jtabs;
  jtabs.reserve(certificates.size() * kTabSize);
  std::vector<std::size_t> valid;  // certificate index per table slot
  for (std::size_t i = 0; i < certificates.size(); ++i) {
    const ec::AffinePoint& pu = certificates[i].reconstruction_point;
    if (pu.infinity || !c.is_on_curve(pu)) continue;
    const std::size_t base = jtabs.size();
    jtabs.resize(base + kTabSize);
    o.odd_multiples(o.to_jacobian(pu), jtabs.data() + base, kTabSize);
    valid.push_back(i);
  }
  std::vector<ec::CurveOps::AffineM> tables(jtabs.size());
  if (!jtabs.empty())
    o.batch_to_affine(jtabs.data(), tables.data(), jtabs.size(), /*vartime=*/true);

  // Phase 2: eq. (1) per certificate — the wNAF loop over its table plus
  // the mixed addition with Q_CA — still deferring every affine conversion.
  std::vector<ec::CurveOps::JPoint> jac;
  jac.reserve(valid.size());
  std::vector<std::size_t> slot_to_out;
  std::size_t next_valid = 0;
  for (std::size_t i = 0; i < certificates.size(); ++i) {
    if (next_valid >= valid.size() || valid[next_valid] != i) {
      out.push_back(Error::kInvalidPoint);
      continue;
    }
    const ec::CurveOps::AffineM* table = tables.data() + next_valid * kTabSize;
    ++next_valid;
    count_op(Op::kEcMulVar);
    count_op(Op::kEcAdd);
    const bi::U256 e = cert_hash_scalar(certificates[i]);
    const ec::CurveOps::JPoint qu =
        o.madd(o.wnaf_mul_tab(e, table, ec::CurveOps::kVarWnafWidth), ca_mont);
    if (qu.is_infinity()) {  // e*P_U == -Q_CA: same rejection as the single path
      out.push_back(Error::kInvalidPoint);
      continue;
    }
    slot_to_out.push_back(out.size());
    out.push_back(ec::AffinePoint{});
    jac.push_back(qu);
  }
  if (jac.empty()) return out;

  // ONE shared inversion normalizes the whole batch (public values).
  std::vector<ec::CurveOps::AffineM> affine(jac.size());
  o.batch_to_affine(jac.data(), affine.data(), jac.size(), /*vartime=*/true);
  for (std::size_t i = 0; i < affine.size(); ++i)
    out[slot_to_out[i]] = ec::AffinePoint{c.fp().from_mont(affine[i].x),
                                          c.fp().from_mont(affine[i].y), false};
  return out;
}

}  // namespace ecqv::cert
