#include "ecqv/ca.hpp"
#include "ec/fixed_base.hpp"

namespace ecqv::cert {

namespace {
const ec::Curve& curve() { return ec::Curve::p256(); }
}  // namespace

CertificateAuthority::CertificateAuthority(DeviceId id, rng::Rng& rng)
    : CertificateAuthority(id, curve().random_scalar(rng)) {}

CertificateAuthority::CertificateAuthority(DeviceId id, const bi::U256& root_private_key)
    : id_(id), d_ca_(root_private_key), q_ca_(ec::FixedBaseTable::p256().mul(root_private_key)) {}

Result<IssuedCertificate> CertificateAuthority::issue(const DeviceId& subject,
                                                      const ec::AffinePoint& ru,
                                                      std::uint64_t now,
                                                      std::uint64_t lifetime_seconds,
                                                      rng::Rng& rng) {
  if (ru.infinity || !curve().is_on_curve(ru)) return Error::kInvalidPoint;
  const auto& fn = curve().fn();

  // SEC4 §2.4: the CA's ephemeral contribution and the reconstruction point.
  const bi::U256 k = curve().random_scalar(rng);
  const ec::AffinePoint kg = ec::FixedBaseTable::p256().mul(k);
  const ec::AffinePoint pu = curve().add(ru, kg);
  if (pu.infinity) return Error::kInvalidPoint;  // R_U == -kG, retry-able

  Certificate certificate;
  certificate.serial = next_serial_++;
  certificate.issuer = id_;
  certificate.subject = subject;
  certificate.valid_from = now;
  certificate.valid_to = now + lifetime_seconds;
  certificate.reconstruction_point = pu;

  // r = e*k + d_CA mod n.
  const bi::U256 e = cert_hash_scalar(certificate);
  const bi::U256 ek = fn.from_mont(fn.mul(fn.to_mont(e), fn.to_mont(k)));
  const bi::U256 r = fn.add(ek, d_ca_);
  return IssuedCertificate{certificate, r};
}

Result<CertificateAuthority::Enrollment> CertificateAuthority::enroll(
    const DeviceId& subject, std::uint64_t now, std::uint64_t lifetime_seconds, rng::Rng& rng) {
  const CertRequest request = make_cert_request(subject, rng);
  auto issued = issue(subject, request.ru, now, lifetime_seconds, rng);
  if (!issued) return issued.error();
  auto key = reconstruct_private_key(issued->certificate, request.ku, issued->r, q_ca_);
  if (!key) return key.error();
  return Enrollment{issued->certificate, key->private_key, key->public_key};
}

}  // namespace ecqv::cert
