// Timeline composition: turns per-segment operation counts into end-to-end
// protocol execution times on modeled devices, implementing the paper's
// timing algebra:
//
//   eq. (5):  τ_T  = Σ T_OpA_i + Σ T_OpB_i                  (sequential)
//   eq. (7):  τ'_T  = 2 T1 + T2 + 2 T3 + 2 T4               (Opt. I)
//   eq. (8):  τ''_T = 2 T1 + T2 + T3 + 2 T4                 (Opt. II)
//
// Generalized to non-identical devices (the |T_OpAx - T_OpBx| form of
// eq. (6)):
//   Opt. I : T1A + T1B + max(T2A, T2B + T3B) + T3A + T4A + T4B
//   Opt. II: T1A + T1B + max(T2A + T3A, T2B + T3B) + T4A + T4B
//
// The overlap window exists because the optimized request carries the
// initiator's certificate: while B computes its response (Op2+Op3 after its
// Op1), A — already in possession of XG_B once B forwards it — runs its own
// Op2 (Opt. I) or Op2+Op3 (Opt. II, speculative signing before
// verification) concurrently.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "canfd/frame.hpp"
#include "canfd/timeline.hpp"
#include "core/sts.hpp"
#include "core/transport.hpp"
#include "sim/counts.hpp"
#include "sim/device.hpp"

namespace ecqv::sim {

/// The paper's per-device operation times for STS (ms on the given device).
struct StsOpTimes {
  double t1 = 0, t2 = 0, t3 = 0, t4 = 0;
  [[nodiscard]] double total() const { return t1 + t2 + t3 + t4; }
};

/// Prices a party's recorded segments into Op1-Op4 buckets ("Op2a"/"Op2b"
/// both fold into T2 — the paper's Op2 covers public-key and premaster
/// generation wherever they execute).
StsOpTimes sts_op_times(const std::vector<proto::OpSegment>& segments, const DeviceModel& device);

/// eq. (5): both devices' complete workloads, serialized.
double sequential_total_ms(const RunRecord& record, const DeviceModel& initiator_device,
                           const DeviceModel& responder_device);

/// Total STS time under a given optimization variant (generalized
/// eqs. (5)/(7)/(8); see file header).
double sts_total_ms(const StsOpTimes& initiator, const StsOpTimes& responder,
                    proto::StsVariant variant);

/// One rendered timeline row (Fig. 7 reproduction): which device computes
/// which labeled segment over which interval. Message transfer entries are
/// labeled "tx:<step>".
struct TimelineEntry {
  std::string device;
  std::string label;
  double start_ms = 0;
  double end_ms = 0;
  [[nodiscard]] double duration_ms() const { return end_ms - start_ms; }
};

/// Per-message transfer time hook (ms); the CAN-FD layer supplies real
/// frame arithmetic, tests use zero or constants.
using TransferTime = std::function<double(const proto::Message&)>;

/// Builds the sequential (non-optimized, as deployed in the paper's §V-C
/// prototype) timeline of a recorded run.
std::vector<TimelineEntry> build_timeline(const RunRecord& record,
                                          const DeviceModel& initiator_device,
                                          const DeviceModel& responder_device,
                                          const std::string& initiator_name,
                                          const std::string& responder_name,
                                          const TransferTime& transfer);

/// End time of the last entry (total protocol latency).
double timeline_total_ms(const std::vector<TimelineEntry>& timeline);

// ---- transport-fed timelines (the virtual clock) -----------------------
//
// build_timeline() prices message transfer analytically (a TransferTime
// callback per message). The functions below instead derive the timeline
// from a real transport run: the transported bytes themselves — framing,
// ISO-TP fragmentation, flow-control rounds, arbitration waits — set the
// tx intervals through the transport's virtual clock (Transport::now_ms /
// charge / endpoint_time_ms), and device compute charges gate each node's
// next injection exactly as CanBus models it.

/// The bus timing a device profile implies. Exact stuff-bit counting by
/// default: transported bytes are available, so the estimate would be a
/// gratuitous approximation.
can::BusTiming bus_timing(const DeviceModel& device,
                          can::StuffModel stuffing = can::StuffModel::kExact);

/// Replays a recorded run over `transport`: every transcript message is
/// sent through the transport (wrap_fabric framing, segmentation,
/// arbitration), every compute segment is charged to its endpoint's node
/// clock, and the returned timeline interleaves both — Fig. 7 from the
/// wire, not from per-message cost formulas. Endpoints are attached under
/// DeviceId::from_string(name). Requires a lossless transport; throws
/// std::runtime_error if a transcript message fails to deliver.
std::vector<TimelineEntry> replay_timeline(const RunRecord& record,
                                           const DeviceModel& initiator_device,
                                           const DeviceModel& responder_device,
                                           const std::string& initiator_name,
                                           const std::string& responder_name,
                                           proto::Transport& transport);

/// Renders a TimelineRecorder's datagram + compute events as timeline
/// rows ("tx:<step>" / segment labels, device = name_of(src)) — the
/// consuming side for multi-party contention timelines, where no single
/// RunRecord exists.
std::vector<TimelineEntry> transport_timeline(
    const can::TimelineRecorder& recorder,
    const std::function<std::string(const cert::DeviceId&)>& name_of);

}  // namespace ecqv::sim
