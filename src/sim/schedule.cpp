#include "sim/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecqv::sim {

StsOpTimes sts_op_times(const std::vector<proto::OpSegment>& segments,
                        const DeviceModel& device) {
  StsOpTimes times;
  for (const auto& s : segments) {
    const std::string_view label(s.label);
    const double ms = device.time_ms(s.counts);
    if (label.starts_with("Op1")) {
      times.t1 += ms;
    } else if (label.starts_with("Op2")) {
      times.t2 += ms;
    } else if (label.starts_with("Op3")) {
      times.t3 += ms;
    } else if (label.starts_with("Op4")) {
      times.t4 += ms;
    } else {
      throw std::invalid_argument("sts_op_times: non-STS segment label: " + s.label);
    }
  }
  return times;
}

double sequential_total_ms(const RunRecord& record, const DeviceModel& initiator_device,
                           const DeviceModel& responder_device) {
  return initiator_device.time_ms(record.initiator_total()) +
         responder_device.time_ms(record.responder_total());
}

double sts_total_ms(const StsOpTimes& a, const StsOpTimes& b, proto::StsVariant variant) {
  switch (variant) {
    case proto::StsVariant::kBaseline:
      return a.total() + b.total();  // eq. (5)
    case proto::StsVariant::kOptI:
      // A's Op2 hides under B's Op2+Op3 window (or vice versa if A is the
      // slower device — the max() covers both directions of eq. (6)).
      return a.t1 + b.t1 + std::max(a.t2, b.t2 + b.t3) + a.t3 + a.t4 + b.t4;
    case proto::StsVariant::kOptII:
      // A speculatively signs before verifying; Op2+Op3 on both sides
      // overlap fully.
      return a.t1 + b.t1 + std::max(a.t2 + a.t3, b.t2 + b.t3) + a.t4 + b.t4;
  }
  throw std::invalid_argument("sts_total_ms: unknown variant");
}

std::vector<TimelineEntry> build_timeline(const RunRecord& record,
                                          const DeviceModel& initiator_device,
                                          const DeviceModel& responder_device,
                                          const std::string& initiator_name,
                                          const std::string& responder_name,
                                          const TransferTime& transfer) {
  std::vector<TimelineEntry> timeline;
  double clock = 0.0;

  auto emit_segments = [&](const std::vector<proto::OpSegment>& segments,
                           const std::string& device_name, const DeviceModel& device,
                           std::string_view trigger) {
    for (const auto& s : segments) {
      if (s.trigger != trigger) continue;
      const double ms = device.time_ms(s.counts);
      timeline.push_back(TimelineEntry{device_name, s.label, clock, clock + ms});
      clock += ms;
    }
  };

  // Initiator's opening computation (trigger "").
  emit_segments(record.initiator_segments, initiator_name, initiator_device, "");

  for (const auto& message : record.transcript) {
    const double tx = transfer ? transfer(message) : 0.0;
    const bool from_initiator = message.sender == proto::Role::kInitiator;
    timeline.push_back(TimelineEntry{from_initiator ? initiator_name : responder_name,
                                     "tx:" + message.step, clock, clock + tx});
    clock += tx;
    // The receiver's segments triggered by this message.
    if (from_initiator) {
      emit_segments(record.responder_segments, responder_name, responder_device, message.step);
    } else {
      emit_segments(record.initiator_segments, initiator_name, initiator_device, message.step);
    }
  }
  return timeline;
}

double timeline_total_ms(const std::vector<TimelineEntry>& timeline) {
  return timeline.empty() ? 0.0 : timeline.back().end_ms;
}

can::BusTiming bus_timing(const DeviceModel& device, can::StuffModel stuffing) {
  can::BusTiming timing;
  timing.nominal_bitrate = device.link.nominal_bitrate;
  timing.data_bitrate = device.link.data_bitrate;
  timing.stuffing = stuffing;
  return timing;
}

std::vector<TimelineEntry> replay_timeline(const RunRecord& record,
                                           const DeviceModel& initiator_device,
                                           const DeviceModel& responder_device,
                                           const std::string& initiator_name,
                                           const std::string& responder_name,
                                           proto::Transport& transport) {
  const cert::DeviceId initiator_id = cert::DeviceId::from_string(initiator_name);
  const cert::DeviceId responder_id = cert::DeviceId::from_string(responder_name);
  transport.attach(initiator_id);
  transport.attach(responder_id);

  std::vector<TimelineEntry> timeline;
  auto emit_segments = [&](const std::vector<proto::OpSegment>& segments,
                           const std::string& device_name, const cert::DeviceId& id,
                           const DeviceModel& device, std::string_view trigger) {
    for (const auto& s : segments) {
      if (s.trigger != trigger) continue;
      const double ms = device.time_ms(s.counts);
      const double start = transport.endpoint_time_ms(id);
      transport.charge(id, ms);
      timeline.push_back(TimelineEntry{device_name, s.label, start, start + ms});
    }
  };

  // Initiator's opening computation (trigger "").
  emit_segments(record.initiator_segments, initiator_name, initiator_id, initiator_device, "");

  for (const auto& message : record.transcript) {
    const bool from_initiator = message.sender == proto::Role::kInitiator;
    const cert::DeviceId& src = from_initiator ? initiator_id : responder_id;
    const cert::DeviceId& dst = from_initiator ? responder_id : initiator_id;
    // The sender finished its compute; the message enters arbitration at
    // the sender's node clock and completes at the receiver's clock after
    // the final frame delivers (receive() drives the bus to that point).
    const double ready = transport.endpoint_time_ms(src);
    const Status sent = transport.send(src, dst, message);
    if (!sent.ok()) throw std::runtime_error("replay_timeline: send failed: " + message.step);
    const auto datagram = transport.receive(dst);
    if (!datagram.has_value() || datagram->message.step != message.step)
      throw std::runtime_error("replay_timeline: message lost in transit: " + message.step);
    const double arrived = transport.endpoint_time_ms(dst);
    timeline.push_back(TimelineEntry{from_initiator ? initiator_name : responder_name,
                                     "tx:" + message.step, ready, arrived});
    // The receiver's segments triggered by this message.
    if (from_initiator) {
      emit_segments(record.responder_segments, responder_name, responder_id, responder_device,
                    message.step);
    } else {
      emit_segments(record.initiator_segments, initiator_name, initiator_id, initiator_device,
                    message.step);
    }
  }
  return timeline;
}

std::vector<TimelineEntry> transport_timeline(
    const can::TimelineRecorder& recorder,
    const std::function<std::string(const cert::DeviceId&)>& name_of) {
  std::vector<TimelineEntry> timeline;
  for (const auto& e : recorder.events()) {
    switch (e.kind) {
      case can::TimelineEvent::Kind::kDatagram:
        timeline.push_back(
            TimelineEntry{name_of(e.src), "tx:" + e.label, e.queued_ms, e.end_ms});
        break;
      case can::TimelineEvent::Kind::kCompute:
        timeline.push_back(TimelineEntry{
            name_of(e.src), e.label.empty() ? std::string("compute") : e.label, e.start_ms,
            e.end_ms});
        break;
      default: break;  // frame-level events stay in the recorder's domain
    }
  }
  std::sort(timeline.begin(), timeline.end(),
            [](const TimelineEntry& a, const TimelineEntry& b) {
              return a.start_ms < b.start_ms;
            });
  return timeline;
}

}  // namespace ecqv::sim
