#include "sim/jitter.hpp"

#include <cmath>

namespace ecqv::sim {

namespace {
/// Uniform in (0, 1]: 52 random mantissa bits, never exactly zero.
double uniform01(rng::Rng& rng) {
  Bytes b(8);
  rng.fill(b);
  const std::uint64_t v = load_be64(b) >> 12;  // 52 bits
  return (static_cast<double>(v) + 1.0) / 4503599627370497.0;  // 2^52 + 1
}
}  // namespace

double gaussian_sample(rng::Rng& rng) {
  const double u1 = uniform01(rng);
  const double u2 = uniform01(rng);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double sample_time_ms(double base_ms, double rel_sigma, rng::Rng& rng) {
  const double noisy = base_ms * (1.0 + rel_sigma * gaussian_sample(rng));
  return noisy < 0.0 ? 0.0 : noisy;
}

SampleStats sample_run_stats(double base_ms, double rel_sigma, std::size_t runs,
                             rng::Rng& rng) {
  SampleStats stats;
  stats.n = runs;
  if (runs == 0) return stats;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < runs; ++i) {
    const double sample = sample_time_ms(base_ms, rel_sigma, rng);
    sum += sample;
    sum_sq += sample * sample;
  }
  stats.mean = sum / static_cast<double>(runs);
  const double variance =
      sum_sq / static_cast<double>(runs) - stats.mean * stats.mean;
  stats.stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return stats;
}

}  // namespace ecqv::sim
