#include "sim/paper_data.hpp"

#include <stdexcept>

namespace ecqv::sim {

using proto::ProtocolKind;

std::string_view device_name(PaperDevice device) {
  switch (device) {
    case PaperDevice::kAtmega2560: return "ATmega2560";
    case PaperDevice::kS32K144: return "S32K144";
    case PaperDevice::kStm32F767: return "STM32F767";
    case PaperDevice::kRaspberryPi4: return "RaspberryPi 4";
  }
  return "?";
}

double table1_ms(ProtocolKind protocol, PaperDevice device) {
  // Table I, mean values (ms).
  struct Row {
    ProtocolKind kind;
    double atmega, s32k, stm32, rpi4;
  };
  static constexpr std::array<Row, 7> kRows = {{
      {ProtocolKind::kSEcdsa, 36859.26, 2894.10, 2521.77, 18.76},
      {ProtocolKind::kSEcdsaExt, 36882.64, 2976.20, 2602.69, 18.68},
      {ProtocolKind::kSts, 46262.03, 3622.71, 3162.07, 23.26},
      {ProtocolKind::kStsOptI, 41680.23, 3246.55, 2818.02, 20.87},
      {ProtocolKind::kStsOptII, 32410.81, 2556.84, 2219.25, 16.31},
      {ProtocolKind::kScianc, 8990.49, 721.67, 628.10, 4.58},
      {ProtocolKind::kPoramb, 17932.17, 1471.66, 1263.00, 8.98},
  }};
  for (const auto& row : kRows) {
    if (row.kind != protocol) continue;
    switch (device) {
      case PaperDevice::kAtmega2560: return row.atmega;
      case PaperDevice::kS32K144: return row.s32k;
      case PaperDevice::kStm32F767: return row.stm32;
      case PaperDevice::kRaspberryPi4: return row.rpi4;
    }
  }
  throw std::invalid_argument("table1_ms: unknown protocol/device");
}

const std::vector<Table2Row>& table2() {
  static const std::vector<Table2Row> kTable = {
      {ProtocolKind::kSEcdsa,
       {{"A1", 48}, {"B1", 213}, {"A2", 165}, {"B2", 1}},
       427},
      {ProtocolKind::kSEcdsaExt,
       {{"A1", 48}, {"B1", 213}, {"A2", 165}, {"B2", 97}, {"A3", 96}},
       619},
      {ProtocolKind::kSts,
       {{"A1", 80}, {"B1", 245}, {"A2", 165}, {"B2", 1}},
       491},
      {ProtocolKind::kScianc,
       {{"A1", 149}, {"B1", 149}, {"A2", 32}, {"B2", 32}},
       362},
      {ProtocolKind::kPoramb,
       {{"A1", 48}, {"B1", 48}, {"A2", 165}, {"B2", 165}, {"A3", 197}, {"B3", 197}},
       820},
  };
  return kTable;
}

std::string_view verdict_symbol(Verdict v) {
  switch (v) {
    case Verdict::kWeak: return "X";
    case Verdict::kPartial: return "D";  // paper: ∆
    case Verdict::kFull: return "OK";    // paper: ✓
  }
  return "?";
}

std::string_view property_name(SecurityProperty p) {
  switch (p) {
    case SecurityProperty::kDataExposure: return "Data exposure";
    case SecurityProperty::kNodeCapturing: return "Node capturing";
    case SecurityProperty::kKeyDataReuse: return "Key data reuse";
    case SecurityProperty::kKeyDerivationExploit: return "Key der. exploit";
    case SecurityProperty::kAuthProcedure: return "Auth. procedure";
  }
  return "?";
}

Verdict table3_verdict(SecurityProperty property, ProtocolKind protocol) {
  // Table III as printed.
  auto col = [&](Verdict secdsa, Verdict sts, Verdict scianc, Verdict poramb) {
    switch (protocol) {
      case ProtocolKind::kSEcdsa:
      case ProtocolKind::kSEcdsaExt: return secdsa;
      case ProtocolKind::kSts:
      case ProtocolKind::kStsOptI:
      case ProtocolKind::kStsOptII: return sts;
      case ProtocolKind::kScianc: return scianc;
      case ProtocolKind::kPoramb: return poramb;
    }
    throw std::invalid_argument("table3_verdict: unknown protocol");
  };
  switch (property) {
    case SecurityProperty::kDataExposure:
      return col(Verdict::kWeak, Verdict::kFull, Verdict::kWeak, Verdict::kWeak);
    case SecurityProperty::kNodeCapturing:
      return col(Verdict::kPartial, Verdict::kPartial, Verdict::kWeak, Verdict::kWeak);
    case SecurityProperty::kKeyDataReuse:
      return col(Verdict::kWeak, Verdict::kFull, Verdict::kPartial, Verdict::kWeak);
    case SecurityProperty::kKeyDerivationExploit:
      return col(Verdict::kPartial, Verdict::kFull, Verdict::kPartial, Verdict::kPartial);
    case SecurityProperty::kAuthProcedure:
      return col(Verdict::kFull, Verdict::kFull, Verdict::kPartial, Verdict::kPartial);
  }
  throw std::invalid_argument("table3_verdict: unknown property");
}

}  // namespace ecqv::sim
