#include "sim/calibrate.hpp"

#include <cmath>
#include <stdexcept>

namespace ecqv::sim {

namespace {

/// Splits a workload into its EC-weighted and symmetric-weighted masses.
struct Mass {
  double ec = 0.0;
  double sym = 0.0;
};

Mass weighted_mass(const OpCounts& counts) {
  // Table I was measured on paper-class MCUs: always fit against the
  // embedded ratio profile (see ReferenceWeights::embedded()), never the
  // native fast-path one.
  const auto& w = ReferenceWeights::embedded();
  Mass m;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const Op op = static_cast<Op>(i);
    const double contribution = static_cast<double>(counts.counts[i]) * w[op];
    if (is_ec_op(op)) {
      m.ec += contribution;
    } else {
      m.sym += contribution;
    }
  }
  return m;
}

}  // namespace

DeviceFit fit_device(std::string device_label, const std::vector<CalibrationRow>& rows) {
  if (rows.empty()) throw std::invalid_argument("fit_device: no calibration rows");
  std::vector<Mass> masses;
  masses.reserve(rows.size());
  for (const auto& row : rows) masses.push_back(weighted_mass(row.counts));

  // Identify the symmetric factor from the (S-ECDSA ext − S-ECDSA) pair
  // when available: the two rows do identical EC work, so their time
  // difference isolates the symmetric stack. This avoids the usual
  // colinearity problem (every protocol's EC mass dominates, so a joint
  // 2-var LSQ drives the symmetric factor to zero).
  double beta = -1.0;
  {
    const CalibrationRow* base = nullptr;
    const CalibrationRow* ext = nullptr;
    const Mass* base_mass = nullptr;
    const Mass* ext_mass = nullptr;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].kind == proto::ProtocolKind::kSEcdsa) {
        base = &rows[i];
        base_mass = &masses[i];
      }
      if (rows[i].kind == proto::ProtocolKind::kSEcdsaExt) {
        ext = &rows[i];
        ext_mass = &masses[i];
      }
    }
    if (base != nullptr && ext != nullptr) {
      const double d_sym = ext_mass->sym - base_mass->sym;
      const double d_ec = ext_mass->ec - base_mass->ec;  // ~0 by construction
      if (d_sym > 1e-12 && std::abs(d_ec) < 1e-9) {
        beta = std::max(0.0, (ext->target_ms - base->target_ms) / d_sym);
      }
    }
  }

  // EC factor by LSQ on the symmetric-corrected targets (falls back to a
  // joint 2-var fit when the difference pair was unavailable).
  double alpha = 0;
  if (beta >= 0.0) {
    double saa = 0, say = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      saa += masses[i].ec * masses[i].ec;
      say += masses[i].ec * (rows[i].target_ms - beta * masses[i].sym);
    }
    alpha = saa > 0 ? std::max(0.0, say / saa) : 0.0;
  } else {
    double saa = 0, sab = 0, sbb = 0, say = 0, sby = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      saa += masses[i].ec * masses[i].ec;
      sab += masses[i].ec * masses[i].sym;
      sbb += masses[i].sym * masses[i].sym;
      say += masses[i].ec * rows[i].target_ms;
      sby += masses[i].sym * rows[i].target_ms;
    }
    const double det = saa * sbb - sab * sab;
    if (std::abs(det) > 1e-12 * saa * sbb + 1e-30) {
      alpha = (say * sbb - sby * sab) / det;
      beta = (sby * saa - say * sab) / det;
    }
    if (beta < 0.0) {
      beta = 0.0;
      alpha = saa > 0 ? say / saa : 0.0;
    }
    if (alpha < 0.0) {
      alpha = 0.0;
      beta = sbb > 0 ? sby / sbb : 0.0;
    }
  }

  DeviceFit fit;
  fit.model.name = std::move(device_label);
  fit.model.ec_factor_ms = alpha;
  fit.model.sym_factor_ms = beta;
  fit.model.weights = &ReferenceWeights::embedded();  // fitted in that basis
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double predicted = alpha * masses[i].ec + beta * masses[i].sym;
    fit.predicted_ms.push_back(predicted);
    const double rel = std::abs(predicted - rows[i].target_ms) / rows[i].target_ms;
    fit.max_rel_error = std::max(fit.max_rel_error, rel);
  }
  return fit;
}

std::vector<CalibrationRow> calibration_rows(PaperDevice device, std::uint64_t seed) {
  std::vector<CalibrationRow> rows;
  rows.reserve(kCalibrationRows.size());
  for (const auto kind : kCalibrationRows) {
    const RunRecord record = record_run(kind, seed);
    rows.push_back(CalibrationRow{kind, record.total(), table1_ms(kind, device)});
  }
  return rows;
}

std::vector<DeviceFit> calibrate_all_paper_devices(std::uint64_t seed) {
  // Record each protocol once; reuse counts for all four devices.
  std::vector<std::pair<proto::ProtocolKind, OpCounts>> counted;
  for (const auto kind : kCalibrationRows) {
    const RunRecord record = record_run(kind, seed);
    counted.emplace_back(kind, record.total());
  }
  std::vector<DeviceFit> fits;
  for (const auto device : kPaperDevices) {
    std::vector<CalibrationRow> rows;
    rows.reserve(counted.size());
    for (const auto& [kind, counts] : counted)
      rows.push_back(CalibrationRow{kind, counts, table1_ms(kind, device)});
    fits.push_back(fit_device(std::string(device_name(device)), rows));
  }
  return fits;
}

}  // namespace ecqv::sim
