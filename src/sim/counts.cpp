#include "sim/counts.hpp"

#include <stdexcept>

#include "rng/test_rng.hpp"

namespace ecqv::sim {

namespace {

constexpr std::uint64_t kNow = 1700000000;  // fixed epoch for validity checks
constexpr std::uint64_t kLifetime = 86400;

struct Fixture {
  cert::CertificateAuthority ca;
  proto::Credentials alice;
  proto::Credentials bob;

  explicit Fixture(std::uint64_t seed)
      : ca(cert::DeviceId::from_string("gateway-ca"),
           [&] {
             rng::TestRng boot(seed);
             return ec::Curve::p256().random_scalar(boot);
           }()),
        alice([&] {
          rng::TestRng r(seed + 1);
          return proto::provision_device(ca, cert::DeviceId::from_string("alice"), kNow,
                                         kLifetime, r);
        }()),
        bob([&] {
          rng::TestRng r(seed + 2);
          return proto::provision_device(ca, cert::DeviceId::from_string("bob"), kNow, kLifetime,
                                         r);
        }()) {
    rng::TestRng r(seed + 3);
    proto::install_pairwise_key(alice, bob, r);
  }
};

}  // namespace

OpCounts RunRecord::initiator_total() const {
  OpCounts total;
  for (const auto& s : initiator_segments) total += s.counts;
  return total;
}

OpCounts RunRecord::responder_total() const {
  OpCounts total;
  for (const auto& s : responder_segments) total += s.counts;
  return total;
}

OpCounts RunRecord::total() const { return initiator_total() + responder_total(); }

OpCounts counts_with_prefix(const std::vector<proto::OpSegment>& segments,
                            std::string_view prefix) {
  OpCounts total;
  for (const auto& s : segments)
    if (std::string_view(s.label).starts_with(prefix)) total += s.counts;
  return total;
}

RunRecord record_run(proto::ProtocolKind kind, std::uint64_t seed) {
  Fixture fixture(seed);
  rng::TestRng rng_a(seed + 10);
  rng::TestRng rng_b(seed + 11);

  if (kind == proto::ProtocolKind::kScianc) {
    // Warm the extraction caches: the measured run is the steady state.
    auto warm = proto::make_parties(kind, fixture.alice, fixture.bob, rng_a, rng_b, kNow);
    const auto warm_result = proto::run_handshake(*warm.initiator, *warm.responder);
    if (!warm_result.success) throw std::runtime_error("record_run: SCIANC warm-up failed");
  }

  auto pair = proto::make_parties(kind, fixture.alice, fixture.bob, rng_a, rng_b, kNow);
  const auto result = proto::run_handshake(*pair.initiator, *pair.responder);
  if (!result.success) throw std::runtime_error("record_run: handshake failed");

  RunRecord record;
  record.kind = kind;
  record.transcript = result.transcript;
  record.initiator_segments = pair.initiator->segments();
  record.responder_segments = pair.responder->segments();
  return record;
}

}  // namespace ecqv::sim
