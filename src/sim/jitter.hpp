// Run-to-run timing variation model.
//
// Table I reports mean ± σ over ten runs; the deterministic cost model
// alone reproduces only the means. This adds the paper's measurement-noise
// layer: multiplicative Gaussian jitter applied per protocol run (the
// boards' variation is dominated by interrupt/timer jitter that scales
// with runtime; the paper's relative σ is ~1e-5..5e-3). Sampling is
// deterministic under a caller-supplied RNG.
#pragma once

#include <vector>

#include "rng/rng.hpp"
#include "sim/device.hpp"

namespace ecqv::sim {

/// One standard Gaussian variate (Box-Muller over the RNG's uniforms).
double gaussian_sample(rng::Rng& rng);

/// A single noisy execution-time sample: base_ms * (1 + rel_sigma * N(0,1)),
/// clamped at zero.
double sample_time_ms(double base_ms, double rel_sigma, rng::Rng& rng);

struct SampleStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

/// Mean ± σ over `runs` noisy samples — the Table I cell format.
SampleStats sample_run_stats(double base_ms, double rel_sigma, std::size_t runs, rng::Rng& rng);

}  // namespace ecqv::sim
