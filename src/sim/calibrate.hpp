// Device-model calibration against the paper's Table I.
//
// Model: cost(device, op) = weight(op) * (EC factor | symmetric factor),
// with the reference weights pinning the within-group ratios (measured from
// this library's own primitives). For each device we fit the two factors by
// least squares over the five calibration rows (S-ECDSA, S-ECDSA ext., STS,
// SCIANC, PORAMB). The STS Opt. I/II rows are *excluded* from the fit and
// later predicted by the scheduler — they validate the model.
//
// The 2-parameter fit over 5 anchors is deliberately stiff: it can only
// reproduce the paper if the *operation-count ratios* of our protocol
// implementations match the paper's implementations. A large residual would
// mean our protocol does different work than the paper's — so the residual
// printed by bench_table1 is the reproduction's primary self-check.
#pragma once

#include <vector>

#include "sim/counts.hpp"
#include "sim/device.hpp"
#include "sim/paper_data.hpp"

namespace ecqv::sim {

struct CalibrationRow {
  proto::ProtocolKind kind;
  OpCounts counts;     // both devices summed (Table I measures the pair)
  double target_ms;    // paper value
};

struct DeviceFit {
  DeviceModel model;
  std::vector<double> predicted_ms;  // aligned with the rows passed in
  double max_rel_error = 0.0;        // max |pred-target|/target over rows
};

/// Least-squares fit of the two device factors. Factors are clamped
/// non-negative (a negative symmetric factor falls back to EC-only fit).
DeviceFit fit_device(std::string device_label, const std::vector<CalibrationRow>& rows);

/// Convenience: records the calibration protocols (deterministic seed),
/// fits every paper device, returns models in kPaperDevices order.
std::vector<DeviceFit> calibrate_all_paper_devices(std::uint64_t seed = 42);

/// The calibration rows themselves (shared with benches/tests).
std::vector<CalibrationRow> calibration_rows(PaperDevice device, std::uint64_t seed = 42);

}  // namespace ecqv::sim
