// Embedded device cost model.
//
// We cannot run on the paper's four boards (ATmega2560, S32K144, STM32F767,
// Raspberry Pi 4), so device execution time is modeled as
//
//     time_ms = Σ_op  count(op) · cost_ms(device, op)
//
// where the counts come from *real executions* of this library's protocol
// code (common/metrics.hpp) and the per-device costs are calibrated against
// the paper's published Table I aggregates (sim/calibrate.hpp). One cost
// table per device must reproduce all protocol rows simultaneously — that
// consistency requirement is what makes the model predictive rather than
// transcribed: the STS Opt. I / Opt. II rows and the Fig. 3 / Fig. 7
// breakdowns are *predictions* from tables fitted without them.
#pragma once

#include <array>
#include <string>

#include "common/metrics.hpp"

namespace ecqv::sim {

/// Per-primitive relative weights (units: one ladder scalar-mult = 1.0).
/// They pin the *ratios* between primitives; calibration scales the EC and
/// symmetric groups per device. Two profiles exist because the fast path
/// changed this library's ratios in ways a paper-class MCU cannot follow:
///
///  * native()   — the PR-1 fast path, measured on the dev machine
///    (committed BENCH_primitives.json / BENCH_fleet.json). Fixed-base
///    comb at 0.17x a ladder mult, vartime-gcd inversions, split-table
///    cached verifies. Use for native throughput prediction.
///  * embedded() — paper-class microcontroller ratios (the seed
///    implementation's measured spread). The comb's 33 KiB table does not
///    even fit the ATmega2560's 8 KiB of RAM, so on the paper's boards a
///    fixed-base mult costs a full ladder mult and inversions are Fermat
///    ladders. Table I calibration MUST use this profile — fitting the
///    paper's measurements with fast-path ratios is a category error.
struct ReferenceWeights {
  std::array<double, kOpCount> weight{};
  ReferenceWeights();  // constructs the native() fast-path profile

  /// PR-1 fast-path profile (the process-wide default).
  static const ReferenceWeights& native();
  /// Paper-class embedded profile (Table I calibration).
  static const ReferenceWeights& embedded();

  [[nodiscard]] double operator[](Op op) const {
    return weight[static_cast<std::size_t>(op)];
  }
};

/// True for primitives in the elliptic-curve group (scaled by the device's
/// EC factor); the rest scale with the symmetric factor.
bool is_ec_op(Op op);

/// The CAN-FD link a modeled device is attached to: arbitration-phase and
/// data-phase bit rates (paper §V-C defaults, 0.5 / 2.0 Mbit/s). The
/// device profile owns these so timeline builders derive per-frame bus
/// occupancy from the same place they price compute — see
/// sim::bus_timing() in sim/schedule.hpp for the canfd::BusTiming bridge.
struct LinkProfile {
  double nominal_bitrate = 500'000.0;
  double data_bitrate = 2'000'000.0;
};

struct DeviceModel {
  std::string name;
  double ec_factor_ms = 1.0;   // ms per unit EC weight
  double sym_factor_ms = 1.0;  // ms per unit symmetric weight
  /// Weight profile this model prices against; null means the native
  /// fast-path profile. Calibrated paper devices point at embedded().
  const ReferenceWeights* weights = nullptr;
  LinkProfile link{};          // the bus this device transmits on

  /// Predicted milliseconds for a counted workload.
  [[nodiscard]] double time_ms(const OpCounts& counts) const;

  /// Cost of a single primitive in ms.
  [[nodiscard]] double op_cost_ms(Op op) const;
};

/// The global reference weights instance: the native fast-path profile.
const ReferenceWeights& reference_weights();

}  // namespace ecqv::sim
