// Embedded device cost model.
//
// We cannot run on the paper's four boards (ATmega2560, S32K144, STM32F767,
// Raspberry Pi 4), so device execution time is modeled as
//
//     time_ms = Σ_op  count(op) · cost_ms(device, op)
//
// where the counts come from *real executions* of this library's protocol
// code (common/metrics.hpp) and the per-device costs are calibrated against
// the paper's published Table I aggregates (sim/calibrate.hpp). One cost
// table per device must reproduce all protocol rows simultaneously — that
// consistency requirement is what makes the model predictive rather than
// transcribed: the STS Opt. I / Opt. II rows and the Fig. 3 / Fig. 7
// breakdowns are *predictions* from tables fitted without them.
#pragma once

#include <array>
#include <string>

#include "common/metrics.hpp"

namespace ecqv::sim {

/// Per-primitive relative weights of this library's implementation,
/// measured natively (see bench/bench_primitives_native.cpp; values are the
/// dev-machine medians, units: one ladder scalar-mult = 1.0). They pin the
/// *ratios* between primitives; calibration scales the EC and symmetric
/// groups per device.
struct ReferenceWeights {
  std::array<double, kOpCount> weight{};
  ReferenceWeights();

  [[nodiscard]] double operator[](Op op) const {
    return weight[static_cast<std::size_t>(op)];
  }
};

/// True for primitives in the elliptic-curve group (scaled by the device's
/// EC factor); the rest scale with the symmetric factor.
bool is_ec_op(Op op);

struct DeviceModel {
  std::string name;
  double ec_factor_ms = 1.0;   // ms per unit EC weight
  double sym_factor_ms = 1.0;  // ms per unit symmetric weight

  /// Predicted milliseconds for a counted workload.
  [[nodiscard]] double time_ms(const OpCounts& counts) const;

  /// Cost of a single primitive in ms.
  [[nodiscard]] double op_cost_ms(Op op) const;
};

/// The global reference weights instance.
const ReferenceWeights& reference_weights();

}  // namespace ecqv::sim
