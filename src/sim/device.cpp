#include "sim/device.hpp"

namespace ecqv::sim {

ReferenceWeights::ReferenceWeights() {
  auto set = [&](Op op, double w) { weight[static_cast<std::size_t>(op)] = w; };
  // Relative costs of this library's primitives, in units of one
  // Montgomery-ladder scalar multiplication (measured natively on the dev
  // machine with bench_primitives_native; stable to within a few percent).
  set(Op::kEcMulBase, 1.00);
  set(Op::kEcMulVar, 1.00);    // ladder: same schedule as base mult
  set(Op::kEcMulDual, 0.68);   // interleaved 4-bit wNAF Straus
  set(Op::kEcAdd, 0.058);      // one Jacobian add + affine conversion
  set(Op::kModInv, 0.069);     // Fermat inversion (256 sqr + ~128 mul)
  set(Op::kSha256Block, 1.23e-3);
  set(Op::kAesBlock, 7.3e-4);
  // HMAC/CMAC/DRBG already count their internal SHA/AES blocks; only the
  // residual bookkeeping is priced here.
  set(Op::kHmac, 1.0e-5);
  set(Op::kCmac, 1.0e-5);
  set(Op::kDrbgByte, 1.0e-5);
}

bool is_ec_op(Op op) {
  switch (op) {
    case Op::kEcMulBase:
    case Op::kEcMulVar:
    case Op::kEcMulDual:
    case Op::kEcAdd:
    case Op::kModInv: return true;
    default: return false;
  }
}

const ReferenceWeights& reference_weights() {
  static const ReferenceWeights weights;
  return weights;
}

double DeviceModel::op_cost_ms(Op op) const {
  const double w = reference_weights()[op];
  return w * (is_ec_op(op) ? ec_factor_ms : sym_factor_ms);
}

double DeviceModel::time_ms(const OpCounts& counts) const {
  double total = 0.0;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const Op op = static_cast<Op>(i);
    total += static_cast<double>(counts.counts[i]) * op_cost_ms(op);
  }
  return total;
}

}  // namespace ecqv::sim
