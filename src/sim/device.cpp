#include "sim/device.hpp"

namespace ecqv::sim {

ReferenceWeights::ReferenceWeights() {
  auto set = [&](Op op, double w) { weight[static_cast<std::size_t>(op)] = w; };
  // Relative costs of this library's primitives, in units of one
  // Montgomery-ladder scalar multiplication — recalibrated to the PR-1
  // fast path (committed BENCH_primitives.json, ladder = 138.5 us on the
  // dev machine; ROADMAP item b). The fast path compressed the spread:
  // the signed-digit comb makes fixed-base mults ~6x cheaper than the
  // ladder, and the vartime-gcd inversion is ~2.5x cheaper than Fermat.
  set(Op::kEcMulBase, 0.17);   // fixed-base comb (BM_EcMulFixedBaseComb)
  set(Op::kEcMulVar, 1.00);    // ladder (secret scalars); the vartime wNAF
                               // path is ~0.58 but shares this op class
  set(Op::kEcMulDual, 0.67);   // interleaved wNAF Straus (BM_EcDualMulStraus)
  set(Op::kEcMulDualCached, 0.39);  // split-table cached Straus (bench_fleet)
  set(Op::kEcAdd, 0.046);      // one Jacobian add + affine conversion
  set(Op::kModInv, 0.040);     // vartime gcd / addition-chain inversion
  set(Op::kSha256Block, 2.1e-3);
  set(Op::kAesBlock, 1.8e-3);
  // HMAC/CMAC/DRBG already count their internal SHA/AES blocks; only the
  // residual bookkeeping is priced here.
  set(Op::kHmac, 1.0e-5);
  set(Op::kCmac, 1.0e-5);
  set(Op::kDrbgByte, 1.0e-5);
}

bool is_ec_op(Op op) {
  switch (op) {
    case Op::kEcMulBase:
    case Op::kEcMulVar:
    case Op::kEcMulDual:
    case Op::kEcMulDualCached:
    case Op::kEcAdd:
    case Op::kModInv: return true;
    default: return false;
  }
}

const ReferenceWeights& ReferenceWeights::native() {
  static const ReferenceWeights weights;
  return weights;
}

const ReferenceWeights& ReferenceWeights::embedded() {
  static const ReferenceWeights weights = [] {
    ReferenceWeights w = ReferenceWeights();
    auto set = [&](Op op, double v) { w.weight[static_cast<std::size_t>(op)] = v; };
    // Paper-class MCU ratios (the seed implementation's measured spread):
    // no room for comb tables, generic Fermat inversions, per-entry affine
    // conversions. These are the ratios Table I calibration fits against.
    set(Op::kEcMulBase, 1.00);
    set(Op::kEcMulVar, 1.00);
    set(Op::kEcMulDual, 0.68);
    set(Op::kEcMulDualCached, 0.62);  // only the table build is saved there
    set(Op::kEcAdd, 0.058);
    set(Op::kModInv, 0.069);
    set(Op::kSha256Block, 1.23e-3);
    set(Op::kAesBlock, 7.3e-4);
    return w;
  }();
  return weights;
}

const ReferenceWeights& reference_weights() { return ReferenceWeights::native(); }

double DeviceModel::op_cost_ms(Op op) const {
  const double w = (weights != nullptr ? *weights : reference_weights())[op];
  return w * (is_ec_op(op) ? ec_factor_ms : sym_factor_ms);
}

double DeviceModel::time_ms(const OpCounts& counts) const {
  double total = 0.0;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const Op op = static_cast<Op>(i);
    total += static_cast<double>(counts.counts[i]) * op_cost_ms(op);
  }
  return total;
}

}  // namespace ecqv::sim
