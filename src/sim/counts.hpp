// Instrumented protocol runs: executes the real protocol implementations
// over an ideal link with deterministic RNG and records the transcript plus
// every party's operation segments. This is the measurement side of the
// device cost model — the counts fed into calibration and prediction.
#pragma once

#include <vector>

#include "core/driver.hpp"
#include "core/party.hpp"

namespace ecqv::sim {

/// Everything observed in one instrumented handshake.
struct RunRecord {
  proto::ProtocolKind kind;
  proto::Transcript transcript;
  std::vector<proto::OpSegment> initiator_segments;
  std::vector<proto::OpSegment> responder_segments;

  [[nodiscard]] OpCounts initiator_total() const;
  [[nodiscard]] OpCounts responder_total() const;
  [[nodiscard]] OpCounts total() const;
};

/// Runs `kind` between two freshly provisioned devices (deterministic under
/// `seed`) and records it. SCIANC runs one warm-up handshake first so the
/// peer-public-key cache is warm (the protocol's steady state; see
/// core/scianc.hpp). Throws std::runtime_error if the handshake fails.
RunRecord record_run(proto::ProtocolKind kind, std::uint64_t seed = 42);

/// Sums the counts of all segments whose label starts with `prefix`.
OpCounts counts_with_prefix(const std::vector<proto::OpSegment>& segments,
                            std::string_view prefix);

}  // namespace ecqv::sim
