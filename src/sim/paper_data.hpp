// The paper's published measurements, used as calibration anchors and as
// the "paper" column in every reproduction report (EXPERIMENTS.md).
// Source: Basic, Steger, Kofler, DATE 2023 (arXiv:2311.11444), Tables I-III,
// Figs. 3, 4, 7 and §V-C text.
#pragma once

#include <array>
#include <optional>
#include <string_view>
#include <vector>

#include "core/protocol_ids.hpp"

namespace ecqv::sim {

/// The four hardware platforms of Table I (paper §V-A).
enum class PaperDevice { kAtmega2560, kS32K144, kStm32F767, kRaspberryPi4 };
inline constexpr std::array<PaperDevice, 4> kPaperDevices = {
    PaperDevice::kAtmega2560, PaperDevice::kS32K144, PaperDevice::kStm32F767,
    PaperDevice::kRaspberryPi4};

std::string_view device_name(PaperDevice device);

/// Table I cell: mean execution time in ms (we do not model the ±σ).
double table1_ms(proto::ProtocolKind protocol, PaperDevice device);

/// Table I row order as printed in the paper.
inline constexpr std::array<proto::ProtocolKind, 7> kTable1Rows = {
    proto::ProtocolKind::kSEcdsa,   proto::ProtocolKind::kSEcdsaExt,
    proto::ProtocolKind::kSts,      proto::ProtocolKind::kStsOptI,
    proto::ProtocolKind::kStsOptII, proto::ProtocolKind::kScianc,
    proto::ProtocolKind::kPoramb};

/// Protocols whose Table I rows are used as calibration anchors. The STS
/// optimization rows are deliberately excluded — they are predicted by the
/// scheduler and compared against the paper as validation.
inline constexpr std::array<proto::ProtocolKind, 5> kCalibrationRows = {
    proto::ProtocolKind::kSEcdsa, proto::ProtocolKind::kSEcdsaExt, proto::ProtocolKind::kSts,
    proto::ProtocolKind::kScianc, proto::ProtocolKind::kPoramb};

/// Table II: expected per-step payload sizes (bytes) and totals.
struct Table2Row {
  proto::ProtocolKind protocol;
  std::vector<std::pair<std::string_view, std::size_t>> steps;
  std::size_t total_bytes;
};
const std::vector<Table2Row>& table2();

/// Table III verdicts.
enum class Verdict { kWeak, kPartial, kFull };  // paper: ✗ / ∆ / ✓
std::string_view verdict_symbol(Verdict v);

/// Table III rows (properties) in paper order.
enum class SecurityProperty {
  kDataExposure,
  kNodeCapturing,
  kKeyDataReuse,
  kKeyDerivationExploit,
  kAuthProcedure,
};
inline constexpr std::array<SecurityProperty, 5> kTable3Rows = {
    SecurityProperty::kDataExposure, SecurityProperty::kNodeCapturing,
    SecurityProperty::kKeyDataReuse, SecurityProperty::kKeyDerivationExploit,
    SecurityProperty::kAuthProcedure};
std::string_view property_name(SecurityProperty p);

/// Table III columns use the four base protocols.
inline constexpr std::array<proto::ProtocolKind, 4> kTable3Columns = {
    proto::ProtocolKind::kSEcdsa, proto::ProtocolKind::kSts, proto::ProtocolKind::kScianc,
    proto::ProtocolKind::kPoramb};

Verdict table3_verdict(SecurityProperty property, proto::ProtocolKind protocol);

/// §V-C prototype headline numbers (S32K144 pair over CAN-FD).
inline constexpr double kFig7StsTotalSeconds = 3.257;
inline constexpr double kFig7SEcdsaTotalSeconds = 2.677;
inline constexpr double kFig7IncreasePercent = 21.67;

}  // namespace ecqv::sim
