// secp256r1 (NIST P-256) group arithmetic.
//
// The paper evaluates every protocol on secp256r1 (§V-A); this module is the
// only curve implementation the library needs, so the curve is a singleton
// with its two Montgomery contexts (field prime p, group order n) built
// once.
//
// Scalar-multiplication strategy:
//  * mul() / mul_base(): X25519-style Montgomery ladder over Jacobian
//    points with branchless limb swaps — used wherever the scalar is secret
//    (key generation, ECDH, signing). Uniform add+double schedule per bit.
//  * mul_vartime() / dual_mul(): 4-bit wNAF (interleaved for the dual form)
//    — used only on public inputs (signature verification, implicit public
//    key extraction).
// Cost accounting: each entry point bumps its Op so the device model prices
// exactly what ran.
#pragma once

#include <memory>

#include "bigint/mont.hpp"
#include "bigint/u256.hpp"
#include "common/result.hpp"
#include "rng/rng.hpp"

namespace ecqv::ec {

struct CurveOps;    // internal Jacobian engine (jacobian.hpp)
class VerifyTable;  // cached per-peer wNAF table (verify_table.hpp)

/// Affine point with plain-domain (non-Montgomery) coordinates.
/// The point at infinity is represented explicitly.
struct AffinePoint {
  bi::U256 x;
  bi::U256 y;
  bool infinity = false;

  [[nodiscard]] static AffinePoint make_infinity() { return AffinePoint{{}, {}, true}; }
  bool operator==(const AffinePoint&) const = default;
};

class Curve {
 public:
  /// The process-wide secp256r1 instance.
  static const Curve& p256();

  [[nodiscard]] const bi::MontCtx& fp() const { return fp_; }
  [[nodiscard]] const bi::MontCtx& fn() const { return fn_; }
  [[nodiscard]] const bi::U256& field_prime() const { return fp_.modulus(); }
  [[nodiscard]] const bi::U256& order() const { return fn_.modulus(); }
  [[nodiscard]] const AffinePoint& generator() const { return g_; }
  [[nodiscard]] const bi::U256& b_coeff() const { return b_; }

  /// Checks y^2 = x^3 - 3x + b (and accepts infinity).
  [[nodiscard]] bool is_on_curve(const AffinePoint& pt) const;

  /// Group operations on affine points (converted through Jacobian space).
  [[nodiscard]] AffinePoint add(const AffinePoint& a, const AffinePoint& b) const;
  [[nodiscard]] AffinePoint negate(const AffinePoint& a) const;

  /// k*G, constant-schedule ladder. Precondition: k < n.
  [[nodiscard]] AffinePoint mul_base(const bi::U256& k) const;

  /// k*P, constant-schedule ladder. Precondition: k < n, P on curve.
  [[nodiscard]] AffinePoint mul(const bi::U256& k, const AffinePoint& p) const;

  /// k*P, variable-time wNAF — public inputs only.
  [[nodiscard]] AffinePoint mul_vartime(const bi::U256& k, const AffinePoint& p) const;

  /// u1*G + u2*Q via interleaved wNAF (Straus) — public inputs only.
  /// This is ECDSA verification's core and ECQV public-key extraction
  /// (paper eq. (1) with u1 = 1).
  [[nodiscard]] AffinePoint dual_mul(const bi::U256& u1, const bi::U256& u2,
                                     const AffinePoint& q) const;

  /// ECDSA verification core without any field inversion: computes
  /// u1*G + u2*Q and checks x mod n == r by comparing r*Z^2 (and, when
  /// r + n < p, (r+n)*Z^2) against the projective X — public inputs only.
  [[nodiscard]] bool dual_mul_checks_r(const bi::U256& u1, const bi::U256& u2,
                                       const AffinePoint& q, const bi::U256& r) const;

  /// Cached-table variants: Q's odd-multiple wNAF table was precomputed
  /// once (per peer) so the dual multiplication skips the table build and
  /// its shared inversion — public inputs only. Preconditions: `q_table`
  /// non-empty.
  [[nodiscard]] AffinePoint dual_mul(const bi::U256& u1, const bi::U256& u2,
                                     const VerifyTable& q_table) const;
  [[nodiscard]] bool dual_mul_checks_r(const bi::U256& u1, const bi::U256& u2,
                                       const VerifyTable& q_table, const bi::U256& r) const;

  /// Uniform scalar in [1, n-1] by rejection sampling.
  [[nodiscard]] bi::U256 random_scalar(rng::Rng& rng) const;

  /// SHA-256(data) reduced mod n — the paper's Hash() in eq. (1).
  [[nodiscard]] bi::U256 hash_to_scalar(ByteView data) const;

  Curve(const Curve&) = delete;
  Curve& operator=(const Curve&) = delete;
  ~Curve();

  /// The cached internal Jacobian engine (precomputed generator tables);
  /// built once at construction so Curve::mul* never rebuilds state.
  [[nodiscard]] const CurveOps& ops() const { return *ops_; }

 private:
  Curve();

  bi::MontCtx fp_;
  bi::MontCtx fn_;
  bi::U256 b_;
  AffinePoint g_;
  // Montgomery-domain curve constants used by the point formulas.
  bi::U256 b_mont_;
  bi::U256 three_mont_;
  std::unique_ptr<const CurveOps> ops_;

  friend struct CurveOps;  // internal Jacobian engine (jacobian.hpp)
};

}  // namespace ecqv::ec
