#include "ec/curve.hpp"

#include "ec/jacobian.hpp"

#include <stdexcept>

#include "common/metrics.hpp"
#include "ec/verify_table.hpp"
#include "hash/sha256.hpp"

namespace ecqv::ec {

namespace {

// secp256r1 domain parameters (SEC 2 v2.0, §2.4.2).
const char* kP = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
const char* kB = "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
const char* kGx = "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
const char* kGy = "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";
const char* kN = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";

}  // namespace

Curve::Curve()
    : fp_(bi::from_hex256(kP)),
      fn_(bi::from_hex256(kN)),
      b_(bi::from_hex256(kB)),
      g_{bi::from_hex256(kGx), bi::from_hex256(kGy), false} {
  b_mont_ = fp_.to_mont(b_);
  three_mont_ = fp_.to_mont(bi::U256(3));
  if (!is_on_curve(g_)) throw std::logic_error("secp256r1: generator fails curve equation");
  ops_ = std::make_unique<const CurveOps>(*this);
}

Curve::~Curve() = default;

const Curve& Curve::p256() {
  static const Curve curve;
  return curve;
}

bool Curve::is_on_curve(const AffinePoint& pt) const {
  if (pt.infinity) return true;
  if (bi::cmp(pt.x, field_prime()) >= 0 || bi::cmp(pt.y, field_prime()) >= 0) return false;
  const bi::U256 x = fp_.to_mont(pt.x);
  const bi::U256 y = fp_.to_mont(pt.y);
  // y^2 == x^3 - 3x + b
  const bi::U256 lhs = fp_.sqr(y);
  const bi::U256 x3 = fp_.mul(fp_.sqr(x), x);
  const bi::U256 rhs = fp_.add(fp_.sub(x3, fp_.mul(three_mont_, x)), b_mont_);
  return lhs == rhs;
}

AffinePoint Curve::add(const AffinePoint& a, const AffinePoint& b) const {
  count_op(Op::kEcAdd);
  const CurveOps& o = ops();
  return o.to_affine(o.add(o.to_jacobian(a), o.to_jacobian(b)));
}

AffinePoint Curve::negate(const AffinePoint& a) const {
  // Normalize: the infinity flag wins over whatever x/y carry, and the
  // result always uses the canonical infinity encoding. -(x, 0) = (x, 0).
  if (a.infinity) return AffinePoint::make_infinity();
  if (a.y.is_zero()) return AffinePoint{a.x, bi::U256(0), false};
  bi::U256 ny;
  bi::sub(ny, field_prime(), fp_.reduce(a.y));
  return AffinePoint{a.x, ny, false};
}

AffinePoint Curve::mul_base(const bi::U256& k) const {
  count_op(Op::kEcMulBase);
  const CurveOps& o = ops();
  return o.to_affine(o.ladder_mul(k, o.g_jac));
}

AffinePoint Curve::mul(const bi::U256& k, const AffinePoint& p) const {
  count_op(Op::kEcMulVar);
  const CurveOps& o = ops();
  return o.to_affine(o.ladder_mul(k, o.to_jacobian(p)));
}

AffinePoint Curve::mul_vartime(const bi::U256& k, const AffinePoint& p) const {
  count_op(Op::kEcMulVar);
  const CurveOps& o = ops();
  return o.to_affine_vartime(o.wnaf_mul(k, o.to_jacobian(p)));
}

AffinePoint Curve::dual_mul(const bi::U256& u1, const bi::U256& u2, const AffinePoint& q) const {
  count_op(Op::kEcMulDual);
  const CurveOps& o = ops();
  return o.to_affine_vartime(o.straus_dual(u1, u2, o.to_jacobian(q)));
}

namespace {

// x(pt) mod n == r  <=>  X == v * Z^2 for v in {r, r + n} with v < p.
bool projective_x_equals_r(const Curve& c, const CurveOps::JPoint& pt, const bi::U256& r) {
  if (pt.is_infinity()) return false;
  const bi::MontCtx& fp = c.fp();
  const bi::U256 z2 = fp.sqr(pt.z);
  bi::U256 v = r;
  for (;;) {
    if (fp.mul(fp.to_mont(v), z2) == pt.x) return true;
    bi::U256 nv;
    if (bi::add(nv, v, c.order()) != 0) return false;
    if (bi::cmp(nv, c.field_prime()) >= 0) return false;
    v = nv;
  }
}

}  // namespace

bool Curve::dual_mul_checks_r(const bi::U256& u1, const bi::U256& u2, const AffinePoint& q,
                              const bi::U256& r) const {
  count_op(Op::kEcMulDual);
  const CurveOps& o = ops();
  return projective_x_equals_r(*this, o.straus_dual(u1, u2, o.to_jacobian(q)), r);
}

AffinePoint Curve::dual_mul(const bi::U256& u1, const bi::U256& u2,
                            const VerifyTable& q_table) const {
  count_op(Op::kEcMulDualCached);
  const CurveOps& o = ops();
  return o.to_affine_vartime(o.straus_dual_split(u1, u2, q_table.entries_lo(),
                                                 q_table.entries_hi(), VerifyTable::kWidth));
}

bool Curve::dual_mul_checks_r(const bi::U256& u1, const bi::U256& u2,
                              const VerifyTable& q_table, const bi::U256& r) const {
  count_op(Op::kEcMulDualCached);
  const CurveOps& o = ops();
  return projective_x_equals_r(
      *this,
      o.straus_dual_split(u1, u2, q_table.entries_lo(), q_table.entries_hi(),
                          VerifyTable::kWidth),
      r);
}

bi::U256 Curve::random_scalar(rng::Rng& rng) const {
  Bytes buf(32);
  for (;;) {
    rng.fill(buf);
    const bi::U256 k = bi::from_be_bytes(buf);
    if (!k.is_zero() && bi::cmp(k, order()) < 0) return k;
  }
}

bi::U256 Curve::hash_to_scalar(ByteView data) const {
  const hash::Digest d = hash::sha256(data);
  // One conditional subtraction reduces any 256-bit value (n > 2^255).
  return fn_.reduce(bi::from_be_bytes(d));
}

}  // namespace ecqv::ec
