#include "ec/encoding.hpp"

#include <stdexcept>

namespace ecqv::ec {

Bytes encode_compressed(const AffinePoint& pt) {
  if (pt.infinity) throw std::invalid_argument("encode_compressed: infinity");
  Bytes out(kCompressedSize);
  out[0] = pt.y.is_odd() ? 0x03 : 0x02;
  bi::to_be_bytes(pt.x, ByteSpan(out.data() + 1, 32));
  return out;
}

Bytes encode_uncompressed(const AffinePoint& pt) {
  if (pt.infinity) throw std::invalid_argument("encode_uncompressed: infinity");
  Bytes out(kUncompressedSize);
  out[0] = 0x04;
  bi::to_be_bytes(pt.x, ByteSpan(out.data() + 1, 32));
  bi::to_be_bytes(pt.y, ByteSpan(out.data() + 33, 32));
  return out;
}

Bytes encode_raw_xy(const AffinePoint& pt) {
  if (pt.infinity) throw std::invalid_argument("encode_raw_xy: infinity");
  Bytes out(kRawXySize);
  bi::to_be_bytes(pt.x, ByteSpan(out.data(), 32));
  bi::to_be_bytes(pt.y, ByteSpan(out.data() + 32, 32));
  return out;
}

Result<bi::U256> sqrt_mod_p(const Curve& curve, const bi::U256& value) {
  const bi::MontCtx& fp = curve.fp();
  // exponent = (p + 1) / 4; p + 1 never overflows 256 bits for secp256r1.
  bi::U256 exp;
  bi::add(exp, curve.field_prime(), bi::U256(1));
  exp = bi::shr1(bi::shr1(exp));
  const bi::U256 v_mont = fp.to_mont(fp.reduce(value));
  const bi::U256 root = fp.pow(v_mont, exp);
  if (fp.sqr(root) != v_mont) return Error::kInvalidPoint;
  return fp.from_mont(root);
}

Result<AffinePoint> decode_point(const Curve& curve, ByteView data) {
  if (data.size() == kUncompressedSize && data[0] == 0x04) {
    return decode_raw_xy(curve, data.subspan(1));
  }
  if (data.size() == kCompressedSize && (data[0] == 0x02 || data[0] == 0x03)) {
    const bi::U256 x = bi::from_be_bytes(data.subspan(1, 32));
    if (bi::cmp(x, curve.field_prime()) >= 0) return Error::kInvalidPoint;
    const bi::MontCtx& fp = curve.fp();
    const bi::U256 xm = fp.to_mont(x);
    const bi::U256 x3 = fp.mul(fp.sqr(xm), xm);
    const bi::U256 three = fp.to_mont(bi::U256(3));
    const bi::U256 bm = fp.to_mont(curve.b_coeff());
    const bi::U256 rhs = fp.from_mont(fp.add(fp.sub(x3, fp.mul(three, xm)), bm));
    auto root = sqrt_mod_p(curve, rhs);
    if (!root) return root.error();
    bi::U256 y = root.value();
    const bool want_odd = data[0] == 0x03;
    if (y.is_odd() != want_odd) {
      bi::U256 ny;
      bi::sub(ny, curve.field_prime(), y);
      y = ny;
    }
    const AffinePoint pt{x, y, false};
    if (!curve.is_on_curve(pt)) return Error::kInvalidPoint;  // belt and braces
    return pt;
  }
  return Error::kDecodeFailed;
}

Result<AffinePoint> decode_raw_xy(const Curve& curve, ByteView data) {
  if (data.size() != kRawXySize) return Error::kBadLength;
  const bi::U256 x = bi::from_be_bytes(data.subspan(0, 32));
  const bi::U256 y = bi::from_be_bytes(data.subspan(32, 32));
  const AffinePoint pt{x, y, false};
  if (!curve.is_on_curve(pt)) return Error::kInvalidPoint;
  return pt;
}

}  // namespace ecqv::ec
