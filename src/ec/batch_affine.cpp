// 8-way batch Jacobian->affine normalization on the radix-52 IFMA lane.
//
// The scalar batch_to_affine in jacobian.hpp is Montgomery's trick: prefix
// products of the Z coordinates, one inversion, back-substitution. Here the
// batch is striped across eight SIMD lanes column-major (point index =
// column*8 + lane), so:
//   * the prefix-product phase is one vector multiplication per column of
//     eight points instead of eight scalar multiplications,
//   * one scalar inversion still serves the whole batch — the eight lane
//     totals are combined with seven scalar multiplications, inverted once,
//     and the per-lane inverses recovered with a prefix/suffix sweep,
//   * back-substitution (z^-1, z^-2, z^-3, x*z^-2, y*z^-3) runs 8-wide.
// Values bridge between the scalar engine's 2^256 Montgomery domain and the
// lane's 2^260 domain with one lane multiplication in each direction
// (mont8_load/mont8_store), amortized across the five field operations each
// point needs.
//
// Op accounting is identical to the scalar path — one kModInv, 6n kFpMul,
// n kFpSqr — per LOGICAL field operation, not per SIMD call, so the sim
// cost model prices batched workloads the same as sequential ones (an
// embedded scalar device executes the logical schedule).
#include <vector>

#include "bigint/mont52.hpp"
#include "ec/jacobian.hpp"

namespace ecqv::ec {

namespace {

const bi::Mont52Ctx& fp52() {
  static const bi::Mont52Ctx ctx(bi::p256::kPrime);
  return ctx;
}

}  // namespace

void CurveOps::batch_to_affine_wide(const JPoint* pts, AffineM* out, std::size_t n,
                                    bool vartime) const {
  if (n == 0) return;
  using bi::Fe52x8;
  using bi::U256;
  const bi::Mont52Ctx& c52 = fp52();
  const std::size_t cols = (n + 7) / 8;

  // Pack Z column-major into the lane domain; tail lanes pad with 1, which
  // keeps every lane total nonzero and drops out of the inverses.
  std::vector<Fe52x8> z(cols);
  std::vector<Fe52x8> prefix(cols);
  U256 tmp[8];
  for (std::size_t col = 0; col < cols; ++col) {
    for (std::size_t lane = 0; lane < 8; ++lane) {
      const std::size_t idx = col * 8 + lane;
      tmp[lane] = idx < n ? pts[idx].z : fp.one();
    }
    mont8_load(z[col], tmp, c52);
  }

  // Per-lane prefix products: prefix[col] = product of that lane's Z values
  // through column col.
  prefix[0] = z[0];
  for (std::size_t col = 1; col < cols; ++col)
    mont8_mul(prefix[col], prefix[col - 1], z[col], c52);

  count_op(Op::kModInv);
  count_op(Op::kFpMul, 6 * n);
  count_op(Op::kFpSqr, n);

  // One shared inversion: fold the eight lane totals into one product,
  // invert, then peel the per-lane inverses back out (prefix/suffix sweep).
  U256 totals[8];
  mont8_store(totals, prefix[cols - 1], c52);
  U256 pre[8];
  U256 acc = fp.one();
  for (std::size_t lane = 0; lane < 8; ++lane) {
    pre[lane] = acc;
    acc = fp.mul_raw(acc, totals[lane]);
  }
  U256 ginv = vartime ? fp.inv_vartime(acc) : fp.inv(acc);
  U256 lane_inv[8];
  for (std::size_t lane = 8; lane-- > 0;) {
    lane_inv[lane] = fp.mul_raw(ginv, pre[lane]);
    ginv = fp.mul_raw(ginv, totals[lane]);
  }

  // Back-substitution, newest column first: INV holds the inverse of each
  // lane's running product through the current column.
  Fe52x8 inv_run;
  mont8_load(inv_run, lane_inv, c52);
  U256 xs[8], ys[8], xr[8], yr[8];
  for (std::size_t col = cols; col-- > 0;) {
    Fe52x8 zinv;
    if (col > 0) {
      mont8_mul(zinv, inv_run, prefix[col - 1], c52);
      mont8_mul(inv_run, inv_run, z[col], c52);
    } else {
      zinv = inv_run;
    }
    for (std::size_t lane = 0; lane < 8; ++lane) {
      const std::size_t idx = col * 8 + lane;
      xs[lane] = idx < n ? pts[idx].x : fp.one();
      ys[lane] = idx < n ? pts[idx].y : fp.one();
    }
    Fe52x8 xv, yv, zi2, zi3, xo, yo;
    mont8_load(xv, xs, c52);
    mont8_load(yv, ys, c52);
    mont8_sqr(zi2, zinv, c52);
    mont8_mul(zi3, zi2, zinv, c52);
    mont8_mul(xo, xv, zi2, c52);
    mont8_mul(yo, yv, zi3, c52);
    mont8_store(xr, xo, c52);
    mont8_store(yr, yo, c52);
    for (std::size_t lane = 0; lane < 8; ++lane) {
      const std::size_t idx = col * 8 + lane;
      if (idx < n) out[idx] = AffineM{xr[lane], yr[lane]};
    }
  }
}

}  // namespace ecqv::ec
