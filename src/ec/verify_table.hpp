// Per-peer cached verification table (ROADMAP item d).
//
// Session workloads verify many signatures from the same peer: every STS
// re-handshake and every signed application record authenticates against
// the peer's implicitly-extracted ECQV public key Q. The uncached Straus
// path rebuilds Q's odd-multiple wNAF table — 1 doubling, 2^(w-1)-1 full
// additions and one shared field inversion — on *every* verification.
//
// A VerifyTable front-loads that work once per peer: the odd multiples of
// BOTH Q and 2^128*Q are computed, batch-normalized to affine
// Montgomery-domain coordinates (one shared inversion, Montgomery's trick),
// and kept. Repeat verifications then run a *split* Straus loop
// (u2*Q = u2_lo*Q + u2_hi*(2^128*Q), and likewise for the generator over
// its cached high table), which halves the doubling chain from 256 to 128
// iterations — the dominant cost of a dual multiplication. Caching also
// buys a wider window than the on-the-fly path can afford (width 5 vs 4).
//
// Tables hold public points only; all paths are variable-time by design.
#pragma once

#include <vector>

#include "ec/jacobian.hpp"

namespace ecqv::ec {

class VerifyTable {
 public:
  /// Cached tables use a wider window than the transient Straus path:
  /// 16 entries (Q..31Q) amortize across every signature from the peer.
  static constexpr unsigned kWidth = 5;
  static constexpr std::size_t kTableSize = std::size_t{1} << (kWidth - 1);

  VerifyTable() = default;

  /// Builds the table for public point `q` (variable-time, one shared
  /// inversion). Rejects infinity and off-curve points.
  static Result<VerifyTable> build(const AffinePoint& q);

  /// Batch build: ONE field inversion shared across the normalization of
  /// every point's table (16*N points). Per-entry results so one bad point
  /// does not poison the batch.
  static std::vector<Result<VerifyTable>> build_batch(const std::vector<AffinePoint>& points);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const AffinePoint& point() const { return q_; }
  /// Odd multiples of Q (the low half of the split); null when empty.
  [[nodiscard]] const CurveOps::AffineM* entries_lo() const {
    return entries_.empty() ? nullptr : entries_.data();
  }
  /// Odd multiples of 2^128*Q (the high half); null when empty.
  [[nodiscard]] const CurveOps::AffineM* entries_hi() const {
    return entries_.empty() ? nullptr : entries_.data() + kTableSize;
  }

 private:
  AffinePoint q_;
  // [0, kTableSize): Q, 3Q, ..., 31Q; [kTableSize, 2*kTableSize):
  // 2^128*Q, 3*2^128*Q, ... — all affine Montgomery-domain.
  std::vector<CurveOps::AffineM> entries_;
};

}  // namespace ecqv::ec
