// SEC1 point encodings plus the paper's raw 64-byte x||y format.
//
// Wire sizes matter here: Table II's byte counts assume XG points of
// 64 bytes (raw x||y) and certificates carrying a 33-byte compressed
// reconstruction point inside the 101-byte minimal encoding.
#pragma once

#include "common/result.hpp"
#include "ec/curve.hpp"

namespace ecqv::ec {

inline constexpr std::size_t kCompressedSize = 33;   // 0x02/0x03 || x
inline constexpr std::size_t kUncompressedSize = 65; // 0x04 || x || y
inline constexpr std::size_t kRawXySize = 64;        // x || y (paper's XG)

/// SEC1 §2.3.3. Infinity is not encodable (returns kInvalidPoint on encode
/// attempts via the Result overloads; the plain overloads throw).
Bytes encode_compressed(const AffinePoint& pt);
Bytes encode_uncompressed(const AffinePoint& pt);
Bytes encode_raw_xy(const AffinePoint& pt);

/// SEC1 §2.3.4 with full validation (on-curve check, square-root existence
/// for compressed form). Accepts 33- or 65-byte SEC1 strings.
Result<AffinePoint> decode_point(const Curve& curve, ByteView data);

/// Raw 64-byte x||y with on-curve validation.
Result<AffinePoint> decode_raw_xy(const Curve& curve, ByteView data);

/// Square root modulo the field prime (p ≡ 3 mod 4 ⇒ candidate is
/// rhs^((p+1)/4)). Returns kInvalidPoint when rhs is a non-residue.
Result<bi::U256> sqrt_mod_p(const Curve& curve, const bi::U256& value);

}  // namespace ecqv::ec
