// Fixed-base comb precomputation for base-point scalar multiplication.
//
// The paper's future work asks about hardware support for the implicit
// certificate protocols; on many MCUs the cheaper first step is a flash-
// resident precomputation table for G. This class implements a 4-bit
// windowed comb: 64 windows x 15 odd..15 multiples of (16^w)G stored as
// affine Montgomery-domain coordinates (~60 KiB — flashable), turning a
// base-point multiplication into ≤64 mixed additions with no doublings.
//
// Lookup discipline: within a window the table entry is selected by a
// branchless full scan (digit *values* do not influence the memory trace);
// zero windows are skipped, so the number of additions — the count of
// nonzero 4-bit windows of the scalar — is observable. For uniformly random
// 256-bit scalars this leaks ~binomial noise with no known exploitation,
// but callers wanting full uniformity should keep using Curve::mul_base's
// ladder. This trade-off is the same one micro-ecc & friends ship.
#pragma once

#include <array>
#include <memory>

#include "ec/curve.hpp"

namespace ecqv::ec {

class FixedBaseTable {
 public:
  /// Builds the table for the curve's generator (one-time ~1000 point ops).
  explicit FixedBaseTable(const Curve& curve);

  /// k * G with k < n. Counts as Op::kEcMulBase (same class of work, priced
  /// separately in the accelerator ablation).
  [[nodiscard]] AffinePoint mul(const bi::U256& k) const;

  /// The process-wide table for secp256r1 (built on first use).
  static const FixedBaseTable& p256();

  static constexpr std::size_t kWindowBits = 4;
  static constexpr std::size_t kWindows = 256 / kWindowBits;       // 64
  static constexpr std::size_t kEntriesPerWindow = (1u << kWindowBits) - 1;  // 15

 private:
  struct Entry {
    bi::U256 x;  // Montgomery domain
    bi::U256 y;
  };

  const Curve& curve_;
  // table_[w][d-1] = d * (2^(4w)) * G
  std::array<std::array<Entry, kEntriesPerWindow>, kWindows> table_{};
};

}  // namespace ecqv::ec
