// Fixed-base comb precomputation for base-point scalar multiplication.
//
// The paper's future work asks about hardware support for the implicit
// certificate protocols; on many MCUs the cheaper first step is a flash-
// resident precomputation table for G. This class implements a signed-digit
// 4-bit comb: the scalar is made odd by a branchless conditional negation
// (k or n-k), recoded into 65 odd signed digits d_w in {+-1, +-3, ..., +-15}
// (regular recoding: every digit nonzero by construction), and the result
// accumulated as 64 mixed additions against a table of odd multiples
// d * 16^w * G stored as affine Montgomery-domain coordinates
// (65 windows x 8 entries, ~33 KiB — flashable). The final result is
// conditionally negated back.
//
// Constant-time discipline: the digit recoding is branchless, every window
// performs exactly one mixed addition, the table entry is selected by a
// branchless full scan of all 8 entries (digit values influence neither the
// memory trace nor the schedule), and the digit sign is applied by masked
// selection of y vs p-y. Unlike the earlier unsigned comb there is no
// zero-digit skip, so the number of additions no longer leaks the scalar's
// window pattern.
//
// Construction cost is one batch normalization: all 520 Jacobian entries
// are converted to affine with a single shared field inversion.
#pragma once

#include <array>

#include "ec/curve.hpp"

namespace ecqv::ec {

class FixedBaseTable {
 public:
  /// Builds the table for the curve's generator (one-time ~600 point ops,
  /// one field inversion).
  explicit FixedBaseTable(const Curve& curve);

  /// k * G with k < n (k = 0 yields infinity). Counts as Op::kEcMulBase
  /// (same class of work, priced separately in the accelerator ablation).
  [[nodiscard]] AffinePoint mul(const bi::U256& k) const;

  /// The process-wide table for secp256r1 (built on first use).
  static const FixedBaseTable& p256();

  static constexpr std::size_t kWindowBits = 4;
  // 65 windows: a 256-bit odd scalar recodes into 64 signed odd digits plus
  // a final, always-+1 digit of weight 16^64.
  static constexpr std::size_t kWindows = 256 / kWindowBits + 1;  // 65
  static constexpr std::size_t kEntriesPerWindow = 1u << (kWindowBits - 1);  // 8

 private:
  struct Entry {
    bi::U256 x;  // Montgomery domain
    bi::U256 y;
  };

  const Curve& curve_;
  // table_[w][i] = (2i+1) * (16^w) * G
  std::array<std::array<Entry, kEntriesPerWindow>, kWindows> table_{};
};

}  // namespace ecqv::ec
