// Internal Jacobian-coordinate engine shared by the scalar-multiplication
// paths in curve.cpp and the fixed-base comb table in fixed_base.cpp.
// Coordinates live in the Montgomery domain of fp; Z == 0 encodes the point
// at infinity. Not part of the public API.
//
// One CurveOps instance is built per Curve (Curve::ops() caches it): besides
// the field-context references it precomputes the Jacobian generator and a
// width-7 affine wNAF table of odd generator multiples (64 entries,
// normalized with one shared inversion), so dual_mul never rebuilds the
// generator half of its tables.
//
// Fast-path structure:
//  * All formulas go through fmul/fsqr/fadd/fsub, which take MontCtx's raw
//    (uncounted) ops; each formula bumps Op::kFpMul / Op::kFpSqr once in
//    bulk, so op accounting stays exact without a TLS round-trip per field
//    multiplication.
//  * dbl() uses the 3M+5S a=-3 doubling (dbl-2001-b); madd() is the mixed
//    Jacobian+affine addition (8M+3S) exploiting Z2 = 1 for table entries.
//  * batch_to_affine(): Montgomery's batch-inversion trick — normalizes a
//    whole precomputed table to affine with ONE field inversion plus 3(n-1)
//    multiplications, after which every table hit is a cheap madd.
//  * The variable-time paths (wnaf_mul, straus_dual, table normalization)
//    use the variable-time extended-gcd inversion; constant-time paths
//    (ladder, fixed-base comb, to_affine on secret outputs) keep the fixed
//    addition-chain inversion.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "bigint/mont52.hpp"
#include "common/metrics.hpp"
#include "ec/curve.hpp"

namespace ecqv::ec {

// Internal Jacobian-coordinate engine. Coordinates live in the Montgomery
// domain of fp; Z == 0 encodes the point at infinity.
struct CurveOps {
  struct JPoint {
    bi::U256 x;
    bi::U256 y;
    bi::U256 z;
    [[nodiscard]] bool is_infinity() const { return z.is_zero(); }
  };

  /// Affine point in the Montgomery domain with implicit Z = 1 (table
  /// entries; never the point at infinity).
  struct AffineM {
    bi::U256 x;
    bi::U256 y;
  };

  static constexpr unsigned kGenWnafWidth = 7;
  static constexpr unsigned kVarWnafWidth = 4;
  static constexpr std::size_t kGenTableSize = std::size_t{1} << (kGenWnafWidth - 1);
  static constexpr std::size_t kVarTableSize = std::size_t{1} << (kVarWnafWidth - 1);
  static constexpr std::size_t kWideBatchMin = 16;  // batch_to_affine 8-way cutover

  /// wNAF digits, least significant first, one per bit position.
  struct Digits {
    std::array<std::int8_t, 257> d;
    std::size_t len = 0;
  };

  const Curve& c;
  const bi::MontCtx& fp;
  JPoint g_jac;  // generator, Jacobian/Montgomery form
  std::array<AffineM, kGenTableSize> g_wnaf_tab;     // 1G, 3G, ..., 127G
  // Odd multiples of 2^128*G: the high half of split dual multiplications
  // (straus_dual_split halves the doubling chain for cached-table verifies).
  std::array<AffineM, kGenTableSize> g_wnaf_tab_hi;  // 2^128*G, 3*2^128*G, ...

  explicit CurveOps(const Curve& curve) : c(curve), fp(curve.fp()) {
    g_jac = to_jacobian(curve.generator());
    JPoint g_hi = g_jac;
    for (int i = 0; i < 128; ++i) g_hi = dbl(g_hi);
    std::array<JPoint, 2 * kGenTableSize> tab;
    odd_multiples(g_jac, tab.data(), kGenTableSize);
    odd_multiples(g_hi, tab.data() + kGenTableSize, kGenTableSize);
    std::array<AffineM, 2 * kGenTableSize> affine;
    batch_to_affine(tab.data(), affine.data(), 2 * kGenTableSize, /*vartime=*/true);
    std::copy_n(affine.begin(), kGenTableSize, g_wnaf_tab.begin());
    std::copy_n(affine.begin() + kGenTableSize, kGenTableSize, g_wnaf_tab_hi.begin());
  }

  // Raw field helpers: formulas count field work in bulk (see header note).
  [[nodiscard]] bi::U256 fmul(const bi::U256& a, const bi::U256& b) const {
    return fp.mul_raw(a, b);
  }
  [[nodiscard]] bi::U256 fsqr(const bi::U256& a) const { return fp.sqr_raw(a); }
  [[nodiscard]] bi::U256 fadd(const bi::U256& a, const bi::U256& b) const {
    return fp.add(a, b);
  }
  [[nodiscard]] bi::U256 fsub(const bi::U256& a, const bi::U256& b) const {
    return fp.sub(a, b);
  }

  [[nodiscard]] JPoint infinity() const { return JPoint{fp.one(), fp.one(), bi::U256(0)}; }

  [[nodiscard]] JPoint to_jacobian(const AffinePoint& a) const {
    if (a.infinity) return infinity();
    // to_mont routes through the self-counting MontCtx::mul — no bulk count.
    return JPoint{fp.to_mont(a.x), fp.to_mont(a.y), fp.one()};
  }

  [[nodiscard]] AffinePoint to_affine_impl(const JPoint& p, bool vartime) const {
    if (p.is_infinity()) return AffinePoint::make_infinity();
    count_op(Op::kModInv);
    // 3 raw multiplications below; from_mont/inv count themselves.
    count_op(Op::kFpMul, 3);
    count_op(Op::kFpSqr, 1);
    const bi::U256 zinv = vartime ? fp.inv_vartime(p.z) : fp.inv(p.z);
    const bi::U256 zinv2 = fsqr(zinv);
    const bi::U256 zinv3 = fmul(zinv2, zinv);
    return AffinePoint{fp.from_mont(fmul(p.x, zinv2)), fp.from_mont(fmul(p.y, zinv3)),
                       false};
  }

  /// Constant-schedule conversion — safe for secret-derived points.
  [[nodiscard]] AffinePoint to_affine(const JPoint& p) const {
    return to_affine_impl(p, /*vartime=*/false);
  }

  /// Variable-time conversion — public results only (verification,
  /// public-key extraction).
  [[nodiscard]] AffinePoint to_affine_vartime(const JPoint& p) const {
    return to_affine_impl(p, /*vartime=*/true);
  }

  /// Point doubling, a = -3 (dbl-2001-b): 3M + 5S. Independent field
  /// operations are paired (sqr2/mul2) so they overlap in the core.
  [[nodiscard]] JPoint dbl(const JPoint& p) const {
    if (p.is_infinity() || p.y.is_zero()) return infinity();
    count_op(Op::kFpMul, 3);
    count_op(Op::kFpSqr, 5);
    bi::U256 delta, gamma;
    fp.sqr2_raw(delta, p.z, gamma, p.y);
    const bi::U256 t1 = fsub(p.x, delta);
    const bi::U256 t2 = fadd(p.x, delta);
    bi::U256 beta, alpha;
    fp.mul2_raw(beta, p.x, gamma, alpha, fadd(fadd(t1, t1), t1), t2);
    const bi::U256 beta2 = fadd(beta, beta);
    const bi::U256 beta4 = fadd(beta2, beta2);
    const bi::U256 beta8 = fadd(beta4, beta4);
    bi::U256 a2, g2;
    fp.sqr2_raw(a2, alpha, g2, gamma);
    const bi::U256 x3 = fsub(a2, beta8);
    const bi::U256 yz = fadd(p.y, p.z);
    const bi::U256 z3 = fsub(fsub(fsqr(yz), gamma), delta);
    const bi::U256 g2x4 = fadd(fadd(g2, g2), fadd(g2, g2));
    const bi::U256 y3 = fsub(fmul(alpha, fsub(beta4, x3)), fadd(g2x4, g2x4));
    return JPoint{x3, y3, z3};
  }

  /// General Jacobian addition: 12M + 4S, paired for overlap.
  [[nodiscard]] JPoint add(const JPoint& p, const JPoint& q) const {
    if (p.is_infinity()) return q;
    if (q.is_infinity()) return p;
    count_op(Op::kFpMul, 12);
    count_op(Op::kFpSqr, 4);
    bi::U256 z1z1, z2z2;
    fp.sqr2_raw(z1z1, p.z, z2z2, q.z);
    bi::U256 u1, u2;
    fp.mul2_raw(u1, p.x, z2z2, u2, q.x, z1z1);
    bi::U256 py_qz, qy_pz;
    fp.mul2_raw(py_qz, p.y, q.z, qy_pz, q.y, p.z);
    bi::U256 s1, s2;
    fp.mul2_raw(s1, py_qz, z2z2, s2, qy_pz, z1z1);
    if (u1 == u2) {
      if (s1 == s2) return dbl(p);
      return infinity();  // P + (-P) = infinity
    }
    const bi::U256 h = fsub(u2, u1);
    const bi::U256 r = fsub(s2, s1);
    bi::U256 h2, r2;
    fp.sqr2_raw(h2, h, r2, r);
    bi::U256 h3, u1h2;
    fp.mul2_raw(h3, h, h2, u1h2, u1, h2);
    const bi::U256 x3 = fsub(fsub(r2, h3), fadd(u1h2, u1h2));
    bi::U256 zz, t;
    fp.mul2_raw(zz, p.z, q.z, t, r, fsub(u1h2, x3));
    bi::U256 z3, s1h3;
    fp.mul2_raw(z3, zz, h, s1h3, s1, h3);
    const bi::U256 y3 = fsub(t, s1h3);
    return JPoint{x3, y3, z3};
  }

  /// Mixed addition P (Jacobian) + Q (affine, Z = 1): 8M + 3S.
  [[nodiscard]] JPoint madd(const JPoint& p, const AffineM& q) const {
    if (p.is_infinity()) return JPoint{q.x, q.y, fp.one()};
    count_op(Op::kFpMul, 8);
    count_op(Op::kFpSqr, 3);
    const bi::U256 z1z1 = fsqr(p.z);
    bi::U256 u2, s2p;
    fp.mul2_raw(u2, q.x, z1z1, s2p, q.y, p.z);
    const bi::U256 s2 = fmul(s2p, z1z1);
    const bi::U256 h = fsub(u2, p.x);
    const bi::U256 r = fsub(s2, p.y);
    if (h.is_zero()) {
      if (r.is_zero()) return dbl(p);
      return infinity();  // P + (-P) = infinity
    }
    bi::U256 h2, r2;
    fp.sqr2_raw(h2, h, r2, r);
    bi::U256 h3, v;
    fp.mul2_raw(h3, h, h2, v, p.x, h2);
    const bi::U256 x3 = fsub(fsub(r2, h3), fadd(v, v));
    bi::U256 t, yh3;
    fp.mul2_raw(t, r, fsub(v, x3), yh3, p.y, h3);
    const bi::U256 y3 = fsub(t, yh3);
    const bi::U256 z3 = fmul(p.z, h);
    return JPoint{x3, y3, z3};
  }

  [[nodiscard]] AffineM neg(const AffineM& a) const {
    return AffineM{a.x, fsub(bi::U256(0), a.y)};
  }

  static void cswap(std::uint64_t flag, JPoint& a, JPoint& b) {
    bi::ct_swap(flag, a.x, b.x);
    bi::ct_swap(flag, a.y, b.y);
    bi::ct_swap(flag, a.z, b.z);
  }

  /// Montgomery-ladder scalar multiplication (uniform schedule per bit).
  [[nodiscard]] JPoint ladder_mul(const bi::U256& k, const JPoint& p) const {
    JPoint r0 = infinity();
    JPoint r1 = p;
    std::uint64_t swapped = 0;
    for (int i = 255; i >= 0; --i) {
      const std::uint64_t bit = k.bit(static_cast<unsigned>(i));
      cswap(swapped ^ bit, r0, r1);
      swapped = bit;
      r1 = add(r0, r1);
      r0 = dbl(r0);
    }
    cswap(swapped, r0, r1);
    return r0;
  }

  /// Computes the width-w NAF digit expansion of k, least significant digit
  /// first. Digits are odd in [-(2^w - 1), 2^w - 1] or zero; nonzero digits
  /// are at least w+1 positions apart. Variable-time: public scalars only.
  static Digits wnaf(const bi::U256& k, unsigned width) {
    Digits out;
    const std::uint64_t mod_mask = (std::uint64_t{1} << (width + 1)) - 1;
    const int half = 1 << width;
    bi::U256 d = k;
    while (!d.is_zero()) {
      int digit = 0;
      if (d.is_odd()) {
        const int m = static_cast<int>(d.w[0] & mod_mask);
        digit = m >= half ? m - 2 * half : m;
        if (digit > 0) {
          bi::U256 t;
          bi::sub(t, d, bi::U256(static_cast<std::uint64_t>(digit)));
          d = t;
        } else {
          bi::U256 t;
          bi::add(t, d, bi::U256(static_cast<std::uint64_t>(-digit)));
          d = t;
        }
      }
      out.d[out.len++] = static_cast<std::int8_t>(digit);
      d = bi::shr1(d);
    }
    return out;
  }

  /// Precomputes the odd multiples P, 3P, ..., (2n-1)P in Jacobian form.
  void odd_multiples(const JPoint& p, JPoint* table, std::size_t n) const {
    table[0] = p;
    const JPoint p2 = dbl(p);
    for (std::size_t i = 1; i < n; ++i) table[i] = add(table[i - 1], p2);
  }

  /// Normalizes a batch of non-infinity Jacobian points to affine
  /// (Montgomery-domain) coordinates with ONE shared field inversion
  /// (Montgomery's trick): prefix products of the Z values, one inversion
  /// of the total, then back-substitution peels off each Z^-1.
  void batch_to_affine(const JPoint* pts, AffineM* out, std::size_t n, bool vartime) const {
    if (n == 0) return;
    // Fleet-scale batches ride the AVX-512 IFMA 8-way lane when the CPU has
    // it: below ~2 columns the domain-bridging multiplications eat the
    // vector win, so small wNAF table builds stay on the scalar kernels.
    if (n >= kWideBatchMin && bi::mont8_hw_available()) {
      batch_to_affine_wide(pts, out, n, vartime);
      return;
    }
    // Stack buffer covers the wNAF tables; the fixed-base comb (520 points,
    // one-time construction) takes the heap path.
    std::array<bi::U256, kGenTableSize> stack_prefix;
    std::vector<bi::U256> heap_prefix;
    bi::U256* prefix = stack_prefix.data();
    if (n > stack_prefix.size()) {
      heap_prefix.resize(n);
      prefix = heap_prefix.data();
    }
    bi::U256 total = fp.one();
    for (std::size_t i = 0; i < n; ++i) {
      prefix[i] = total;
      total = fmul(total, pts[i].z);
    }
    count_op(Op::kModInv);
    count_op(Op::kFpMul, 6 * n);
    count_op(Op::kFpSqr, n);
    bi::U256 inv_total = vartime ? fp.inv_vartime(total) : fp.inv(total);
    for (std::size_t i = n; i-- > 0;) {
      const bi::U256 zinv = fmul(inv_total, prefix[i]);
      inv_total = fmul(inv_total, pts[i].z);
      const bi::U256 zinv2 = fsqr(zinv);
      out[i] = AffineM{fmul(pts[i].x, zinv2), fmul(pts[i].y, fmul(zinv2, zinv))};
    }
  }

  /// 8-way implementation of batch_to_affine on the radix-52 IFMA lane
  /// (src/ec/batch_affine.cpp): column-strided prefix products, one shared
  /// inversion, vectorized back-substitution. Same contract (non-infinity
  /// points, same vartime semantics) and IDENTICAL logical op accounting as
  /// the scalar path; normally reached through batch_to_affine's heuristic,
  /// public so the dispatch-matrix tests can pin it directly.
  void batch_to_affine_wide(const JPoint* pts, AffineM* out, std::size_t n, bool vartime) const;

  /// Variable-time k*P over a caller-supplied affine table of odd multiples
  /// of P (P, 3P, ..., sized for `width`); every table hit is a mixed
  /// addition. Batch workloads normalize many tables with one shared
  /// inversion and then run this loop per scalar.
  [[nodiscard]] JPoint wnaf_mul_tab(const bi::U256& k, const AffineM* table,
                                    unsigned width) const {
    if (table == nullptr || k.is_zero()) return infinity();
    const Digits digits = wnaf(k, width);
    JPoint acc = infinity();
    for (std::size_t i = digits.len; i-- > 0;) {
      acc = dbl(acc);
      const int d = digits.d[i];
      if (d > 0) acc = madd(acc, table[static_cast<std::size_t>((d - 1) / 2)]);
      if (d < 0) acc = madd(acc, neg(table[static_cast<std::size_t>((-d - 1) / 2)]));
    }
    return acc;
  }

  /// Variable-time k*P: width-4 wNAF over a batch-normalized affine table of
  /// odd multiples built on the spot.
  [[nodiscard]] JPoint wnaf_mul(const bi::U256& k, const JPoint& p) const {
    if (p.is_infinity() || k.is_zero()) return infinity();
    std::array<JPoint, kVarTableSize> jtab;
    std::array<AffineM, kVarTableSize> table;
    odd_multiples(p, jtab.data(), kVarTableSize);
    batch_to_affine(jtab.data(), table.data(), kVarTableSize, /*vartime=*/true);
    return wnaf_mul_tab(k, table.data(), kVarWnafWidth);
  }

  /// Variable-time u1*G + u2*Q over a caller-supplied affine table of odd
  /// multiples of Q (Q, 3Q, ..., (2n-1)Q; `q_width` is the wNAF width the
  /// table was sized for). `tq` may be null for the degenerate u1*G case.
  /// This is the shared core of straus_dual and the per-peer cached-table
  /// verification path (the broker keeps a peer's table across signatures,
  /// so repeat verifies skip the table build and its inversion entirely).
  [[nodiscard]] JPoint straus_dual_tab(const bi::U256& u1, const bi::U256& u2,
                                       const AffineM* tq, unsigned q_width) const {
    const Digits d1 = wnaf(u1, kGenWnafWidth);
    const Digits d2 = tq == nullptr ? Digits{} : wnaf(u2, q_width);
    const std::size_t len = d1.len > d2.len ? d1.len : d2.len;
    JPoint acc = infinity();
    for (std::size_t i = len; i-- > 0;) {
      acc = dbl(acc);
      const int a = i < d1.len ? d1.d[i] : 0;
      const int b = i < d2.len ? d2.d[i] : 0;
      if (a > 0) acc = madd(acc, g_wnaf_tab[static_cast<std::size_t>((a - 1) / 2)]);
      if (a < 0) acc = madd(acc, neg(g_wnaf_tab[static_cast<std::size_t>((-a - 1) / 2)]));
      if (b > 0) acc = madd(acc, tq[static_cast<std::size_t>((b - 1) / 2)]);
      if (b < 0) acc = madd(acc, neg(tq[static_cast<std::size_t>((-b - 1) / 2)]));
    }
    return acc;
  }

  /// Split-scalar Straus: u*P = u_lo*P + u_hi*(2^128*P) with both halves
  /// interleaved, so the doubling chain shrinks from 256 to 128 iterations.
  /// Requires precomputed tables for BOTH P and 2^128*P — worthwhile
  /// exactly when the tables are cached (the generator always; Q via a
  /// per-peer VerifyTable). Four digit streams share the halved chain.
  [[nodiscard]] JPoint straus_dual_split(const bi::U256& u1, const bi::U256& u2,
                                         const AffineM* tq_lo, const AffineM* tq_hi,
                                         unsigned q_width) const {
    const bi::U256 u1_lo(u1.w[0], u1.w[1], 0, 0), u1_hi(u1.w[2], u1.w[3], 0, 0);
    const bi::U256 u2_lo(u2.w[0], u2.w[1], 0, 0), u2_hi(u2.w[2], u2.w[3], 0, 0);
    const Digits d1l = wnaf(u1_lo, kGenWnafWidth);
    const Digits d1h = wnaf(u1_hi, kGenWnafWidth);
    const Digits d2l = tq_lo == nullptr ? Digits{} : wnaf(u2_lo, q_width);
    const Digits d2h = tq_hi == nullptr ? Digits{} : wnaf(u2_hi, q_width);
    const std::size_t len = std::max(std::max(d1l.len, d1h.len), std::max(d2l.len, d2h.len));
    const auto hit = [&](JPoint& acc, const AffineM* table, int digit) {
      if (digit > 0) acc = madd(acc, table[static_cast<std::size_t>((digit - 1) / 2)]);
      if (digit < 0) acc = madd(acc, neg(table[static_cast<std::size_t>((-digit - 1) / 2)]));
    };
    JPoint acc = infinity();
    for (std::size_t i = len; i-- > 0;) {
      acc = dbl(acc);
      hit(acc, g_wnaf_tab.data(), i < d1l.len ? d1l.d[i] : 0);
      hit(acc, g_wnaf_tab_hi.data(), i < d1h.len ? d1h.d[i] : 0);
      if (tq_lo != nullptr) hit(acc, tq_lo, i < d2l.len ? d2l.d[i] : 0);
      if (tq_hi != nullptr) hit(acc, tq_hi, i < d2h.len ? d2h.d[i] : 0);
    }
    return acc;
  }

  /// Variable-time u1*G + u2*Q (Straus/Shamir interleaving). The generator
  /// half uses the cached width-7 affine table; the Q half builds a width-4
  /// table normalized with one shared inversion.
  [[nodiscard]] JPoint straus_dual(const bi::U256& u1, const bi::U256& u2,
                                   const JPoint& q) const {
    std::array<AffineM, kVarTableSize> tq;
    if (!q.is_infinity()) {
      std::array<JPoint, kVarTableSize> jtab;
      odd_multiples(q, jtab.data(), kVarTableSize);
      batch_to_affine(jtab.data(), tq.data(), kVarTableSize, /*vartime=*/true);
    }
    return straus_dual_tab(u1, u2, q.is_infinity() ? nullptr : tq.data(), kVarWnafWidth);
  }
};

}  // namespace ecqv::ec
