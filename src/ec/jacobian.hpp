// Internal Jacobian-coordinate engine shared by the scalar-multiplication
// paths in curve.cpp and the fixed-base comb table in fixed_base.cpp.
// Coordinates live in the Montgomery domain of fp; Z == 0 encodes the point
// at infinity. Not part of the public API.
#pragma once

#include <array>
#include <vector>

#include "common/metrics.hpp"
#include "ec/curve.hpp"

namespace ecqv::ec {

// Internal Jacobian-coordinate engine. Coordinates live in the Montgomery
// domain of fp; Z == 0 encodes the point at infinity.
struct CurveOps {
  struct JPoint {
    bi::U256 x;
    bi::U256 y;
    bi::U256 z;
    [[nodiscard]] bool is_infinity() const { return z.is_zero(); }
  };

  const Curve& c;
  const bi::MontCtx& fp;

  explicit CurveOps(const Curve& curve) : c(curve), fp(curve.fp()) {}

  [[nodiscard]] JPoint to_jacobian(const AffinePoint& a) const {
    if (a.infinity) return JPoint{fp.one(), fp.one(), bi::U256(0)};
    return JPoint{fp.to_mont(a.x), fp.to_mont(a.y), fp.one()};
  }

  [[nodiscard]] AffinePoint to_affine(const JPoint& p) const {
    if (p.is_infinity()) return AffinePoint::make_infinity();
    count_op(Op::kModInv);
    const bi::U256 zinv = fp.inv(p.z);
    const bi::U256 zinv2 = fp.sqr(zinv);
    const bi::U256 zinv3 = fp.mul(zinv2, zinv);
    return AffinePoint{fp.from_mont(fp.mul(p.x, zinv2)), fp.from_mont(fp.mul(p.y, zinv3)),
                       false};
  }

  [[nodiscard]] JPoint dbl(const JPoint& p) const {
    if (p.is_infinity() || p.y.is_zero()) return JPoint{fp.one(), fp.one(), bi::U256(0)};
    // a = -3 doubling: M = 3(X - Z^2)(X + Z^2).
    const bi::U256 z2 = fp.sqr(p.z);
    const bi::U256 m = fp.mul(fp.add(fp.add(fp.sub(p.x, z2), fp.sub(p.x, z2)), fp.sub(p.x, z2)),
                              fp.add(p.x, z2));
    const bi::U256 y2 = fp.sqr(p.y);
    const bi::U256 s4 = fp.mul(p.x, y2);
    const bi::U256 s = fp.add(fp.add(s4, s4), fp.add(s4, s4));  // 4*X*Y^2
    const bi::U256 x3 = fp.sub(fp.sqr(m), fp.add(s, s));
    const bi::U256 y4 = fp.sqr(y2);
    const bi::U256 y4_8 = fp.add(fp.add(fp.add(y4, y4), fp.add(y4, y4)),
                                 fp.add(fp.add(y4, y4), fp.add(y4, y4)));  // 8*Y^4
    const bi::U256 y3 = fp.sub(fp.mul(m, fp.sub(s, x3)), y4_8);
    const bi::U256 z3 = fp.mul(fp.add(p.y, p.y), p.z);
    return JPoint{x3, y3, z3};
  }

  [[nodiscard]] JPoint add(const JPoint& p, const JPoint& q) const {
    if (p.is_infinity()) return q;
    if (q.is_infinity()) return p;
    const bi::U256 z1z1 = fp.sqr(p.z);
    const bi::U256 z2z2 = fp.sqr(q.z);
    const bi::U256 u1 = fp.mul(p.x, z2z2);
    const bi::U256 u2 = fp.mul(q.x, z1z1);
    const bi::U256 s1 = fp.mul(fp.mul(p.y, q.z), z2z2);
    const bi::U256 s2 = fp.mul(fp.mul(q.y, p.z), z1z1);
    if (u1 == u2) {
      if (s1 == s2) return dbl(p);
      return JPoint{fp.one(), fp.one(), bi::U256(0)};  // P + (-P) = infinity
    }
    const bi::U256 h = fp.sub(u2, u1);
    const bi::U256 r = fp.sub(s2, s1);
    const bi::U256 h2 = fp.sqr(h);
    const bi::U256 h3 = fp.mul(h, h2);
    const bi::U256 u1h2 = fp.mul(u1, h2);
    const bi::U256 x3 = fp.sub(fp.sub(fp.sqr(r), h3), fp.add(u1h2, u1h2));
    const bi::U256 y3 = fp.sub(fp.mul(r, fp.sub(u1h2, x3)), fp.mul(s1, h3));
    const bi::U256 z3 = fp.mul(fp.mul(p.z, q.z), h);
    return JPoint{x3, y3, z3};
  }

  static void cswap(std::uint64_t flag, JPoint& a, JPoint& b) {
    bi::ct_swap(flag, a.x, b.x);
    bi::ct_swap(flag, a.y, b.y);
    bi::ct_swap(flag, a.z, b.z);
  }

  /// Montgomery-ladder scalar multiplication (uniform schedule per bit).
  [[nodiscard]] JPoint ladder_mul(const bi::U256& k, const JPoint& p) const {
    JPoint r0{fp.one(), fp.one(), bi::U256(0)};  // infinity
    JPoint r1 = p;
    std::uint64_t swapped = 0;
    for (int i = 255; i >= 0; --i) {
      const std::uint64_t bit = k.bit(static_cast<unsigned>(i));
      cswap(swapped ^ bit, r0, r1);
      swapped = bit;
      r1 = add(r0, r1);
      r0 = dbl(r0);
    }
    cswap(swapped, r0, r1);
    return r0;
  }

  /// Computes the wNAF (width 4) digit expansion of k, most significant
  /// digit last. Digits are odd in [-15, 15] or zero.
  static std::vector<int> wnaf4(const bi::U256& k) {
    std::vector<int> digits;
    digits.reserve(257);
    bi::U256 d = k;
    while (!d.is_zero()) {
      int digit = 0;
      if (d.is_odd()) {
        const int mod16 = static_cast<int>(d.w[0] & 0x0f);
        digit = mod16 >= 8 ? mod16 - 16 : mod16;
        if (digit > 0) {
          bi::U256 t;
          bi::sub(t, d, bi::U256(static_cast<std::uint64_t>(digit)));
          d = t;
        } else {
          bi::U256 t;
          bi::add(t, d, bi::U256(static_cast<std::uint64_t>(-digit)));
          d = t;
        }
      }
      digits.push_back(digit);
      d = bi::shr1(d);
    }
    return digits;
  }

  /// Precomputes odd multiples P, 3P, ..., 15P.
  void precompute_odd(const JPoint& p, std::array<JPoint, 8>& table) const {
    table[0] = p;
    const JPoint p2 = dbl(p);
    for (std::size_t i = 1; i < table.size(); ++i) table[i] = add(table[i - 1], p2);
  }

  [[nodiscard]] static JPoint neg(const JPoint& p, const bi::MontCtx& fld) {
    if (p.is_infinity()) return p;
    return JPoint{p.x, fld.sub(bi::U256(0), p.y), p.z};
  }

  [[nodiscard]] JPoint wnaf_mul(const bi::U256& k, const JPoint& p) const {
    const std::vector<int> digits = wnaf4(k);
    std::array<JPoint, 8> table{};
    precompute_odd(p, table);
    JPoint acc{fp.one(), fp.one(), bi::U256(0)};
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
      acc = dbl(acc);
      const int d = *it;
      if (d > 0) acc = add(acc, table[static_cast<std::size_t>((d - 1) / 2)]);
      if (d < 0) acc = add(acc, neg(table[static_cast<std::size_t>((-d - 1) / 2)], fp));
    }
    return acc;
  }

  [[nodiscard]] JPoint straus_dual(const bi::U256& u1, const JPoint& g, const bi::U256& u2,
                                   const JPoint& q) const {
    std::vector<int> d1 = wnaf4(u1);
    std::vector<int> d2 = wnaf4(u2);
    const std::size_t len = std::max(d1.size(), d2.size());
    d1.resize(len, 0);
    d2.resize(len, 0);
    std::array<JPoint, 8> tg{};
    std::array<JPoint, 8> tq{};
    precompute_odd(g, tg);
    precompute_odd(q, tq);
    JPoint acc{fp.one(), fp.one(), bi::U256(0)};
    for (std::size_t i = len; i-- > 0;) {
      acc = dbl(acc);
      if (d1[i] > 0) acc = add(acc, tg[static_cast<std::size_t>((d1[i] - 1) / 2)]);
      if (d1[i] < 0) acc = add(acc, neg(tg[static_cast<std::size_t>((-d1[i] - 1) / 2)], fp));
      if (d2[i] > 0) acc = add(acc, tq[static_cast<std::size_t>((d2[i] - 1) / 2)]);
      if (d2[i] < 0) acc = add(acc, neg(tq[static_cast<std::size_t>((-d2[i] - 1) / 2)], fp));
    }
    return acc;
  }
};


}  // namespace ecqv::ec
