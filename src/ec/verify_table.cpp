#include "ec/verify_table.hpp"

namespace ecqv::ec {

Result<VerifyTable> VerifyTable::build(const AffinePoint& q) {
  std::vector<AffinePoint> one{q};
  return build_batch(one)[0];
}

std::vector<Result<VerifyTable>> VerifyTable::build_batch(const std::vector<AffinePoint>& points) {
  const Curve& curve = Curve::p256();
  const CurveOps& o = curve.ops();

  std::vector<Result<VerifyTable>> out;
  out.reserve(points.size());
  // Odd multiples of every valid point AND of its 2^128 multiple (for the
  // split Straus loop), concatenated so batch_to_affine shares a single
  // inversion across the whole fleet's tables.
  constexpr std::size_t kPerPoint = 2 * kTableSize;
  std::vector<CurveOps::JPoint> jac;
  jac.reserve(points.size() * kPerPoint);
  std::vector<std::size_t> valid_index;  // position in `points` per batch slot
  for (std::size_t i = 0; i < points.size(); ++i) {
    const AffinePoint& q = points[i];
    if (q.infinity || !curve.is_on_curve(q)) {
      out.push_back(Error::kInvalidPoint);
      continue;
    }
    out.push_back(VerifyTable{});
    const std::size_t base = jac.size();
    jac.resize(base + kPerPoint);
    const CurveOps::JPoint qj = o.to_jacobian(q);
    CurveOps::JPoint q_hi = qj;
    for (int d = 0; d < 128; ++d) q_hi = o.dbl(q_hi);
    o.odd_multiples(qj, jac.data() + base, kTableSize);
    o.odd_multiples(q_hi, jac.data() + base + kTableSize, kTableSize);
    valid_index.push_back(i);
  }
  if (jac.empty()) return out;

  std::vector<CurveOps::AffineM> affine(jac.size());
  o.batch_to_affine(jac.data(), affine.data(), jac.size(), /*vartime=*/true);

  for (std::size_t slot = 0; slot < valid_index.size(); ++slot) {
    VerifyTable& table = out[valid_index[slot]].value();
    table.q_ = points[valid_index[slot]];
    table.entries_.assign(affine.begin() + static_cast<std::ptrdiff_t>(slot * kPerPoint),
                          affine.begin() + static_cast<std::ptrdiff_t>((slot + 1) * kPerPoint));
  }
  return out;
}

}  // namespace ecqv::ec
