#include "ec/fixed_base.hpp"

#include <stdexcept>
#include <vector>

#include "common/metrics.hpp"
#include "ec/jacobian.hpp"

namespace ecqv::ec {

namespace {

bi::U256 shr4(const bi::U256& a) {
  bi::U256 r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.w[i] = a.w[i] >> 4;
    if (i + 1 < 4) r.w[i] |= a.w[i + 1] << 60;
  }
  return r;
}

}  // namespace

FixedBaseTable::FixedBaseTable(const Curve& curve) : curve_(curve) {
  const CurveOps& ops = curve.ops();
  // Collect every window's odd multiples in Jacobian form, then normalize
  // the whole table with ONE shared inversion (Montgomery's trick).
  std::vector<CurveOps::JPoint> jac(kWindows * kEntriesPerWindow);
  CurveOps::JPoint window_base = ops.to_jacobian(curve.generator());
  for (std::size_t w = 0; w < kWindows; ++w) {
    const CurveOps::JPoint base2 = ops.dbl(window_base);
    jac[w * kEntriesPerWindow] = window_base;  // 1 * 16^w * G
    for (std::size_t i = 1; i < kEntriesPerWindow; ++i)
      jac[w * kEntriesPerWindow + i] = ops.add(jac[w * kEntriesPerWindow + i - 1], base2);
    for (int i = 0; i < 4; ++i) window_base = ops.dbl(window_base);
  }
  std::vector<CurveOps::AffineM> affine(jac.size());
  ops.batch_to_affine(jac.data(), affine.data(), jac.size(), /*vartime=*/true);
  for (std::size_t w = 0; w < kWindows; ++w)
    for (std::size_t i = 0; i < kEntriesPerWindow; ++i) {
      const CurveOps::AffineM& e = affine[w * kEntriesPerWindow + i];
      table_[w][i] = Entry{e.x, e.y};
    }
}

AffinePoint FixedBaseTable::mul(const bi::U256& k) const {
  count_op(Op::kEcMulBase);
  if (bi::cmp(k, curve_.order()) >= 0)
    throw std::invalid_argument("FixedBaseTable::mul: scalar out of range");
  const CurveOps& ops = curve_.ops();
  const bi::MontCtx& fp = curve_.fp();

  // Branchless conditional negation: work with an odd scalar (n - k is odd
  // whenever k is even, since n is odd), undo at the end.
  bi::U256 nk;
  bi::sub(nk, curve_.order(), k);
  const std::uint64_t is_even = 1u - (k.w[0] & 1u);
  bi::U256 d = bi::ct_select(is_even, nk, k);

  // Regular signed-digit recoding: d_w = (d mod 32) - 16 is odd in
  // [-15, 15]; the quotient (d - d_w)/16 = 2*floor(d/32) + 1 stays odd, and
  // after 64 steps the remainder is exactly 1 (weight 16^64). Branchless.
  std::array<std::uint64_t, 64> mag;   // (|d_w| - 1) / 2, in [0, 7]
  std::array<std::uint64_t, 64> sign;  // 1 if d_w < 0
  for (std::size_t w = 0; w < 64; ++w) {
    const std::uint64_t m = d.w[0] & 31u;
    const std::uint64_t dig = m - 16u;  // two's complement; odd
    const std::uint64_t s = dig >> 63;
    const std::uint64_t neg = 0 - s;
    const std::uint64_t abs = (dig ^ neg) - neg;
    mag[w] = (abs - 1u) >> 1;
    sign[w] = s;
    // d = (d - dig) / 16: clears the low 5 bits then sets bit 4 — no carry.
    d.w[0] = (d.w[0] - m) + 16u;
    d = shr4(d);
  }
  // The 65th digit is always +1: start from the top window's 1-entry.
  CurveOps::JPoint acc{table_[64][0].x, table_[64][0].y, fp.one()};

  for (std::size_t w = 0; w < 64; ++w) {
    // Branchless entry selection: scan the whole window, blend with masks.
    bi::U256 ex{};
    bi::U256 ey{};
    for (std::uint64_t i = 0; i < kEntriesPerWindow; ++i) {
      const std::uint64_t match = static_cast<std::uint64_t>(mag[w] == i);
      ex = bi::ct_select(match, table_[w][i].x, ex);
      ey = bi::ct_select(match, table_[w][i].y, ey);
    }
    // Apply the digit sign by masked selection of y vs p - y.
    const bi::U256 ney = fp.sub(bi::U256(0), ey);
    ey = bi::ct_select(sign[w], ney, ey);
    acc = ops.madd(acc, CurveOps::AffineM{ex, ey});
  }

  AffinePoint r = ops.to_affine(acc);  // constant-schedule inversion
  if (!r.infinity) {                   // infinity only for k = 0
    bi::U256 ny;
    bi::sub(ny, curve_.field_prime(), r.y);
    const std::uint64_t y_nonzero = static_cast<std::uint64_t>(!r.y.is_zero());
    r.y = bi::ct_select(is_even & y_nonzero, ny, r.y);
  }
  return r;
}

const FixedBaseTable& FixedBaseTable::p256() {
  static const FixedBaseTable table(Curve::p256());
  return table;
}

}  // namespace ecqv::ec
