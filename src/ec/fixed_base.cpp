#include "ec/fixed_base.hpp"

#include <stdexcept>

#include "common/metrics.hpp"
#include "ec/jacobian.hpp"

namespace ecqv::ec {

FixedBaseTable::FixedBaseTable(const Curve& curve) : curve_(curve) {
  const CurveOps ops(curve);
  // window_base = (2^(4w)) * G, maintained by four doublings per window.
  CurveOps::JPoint window_base = ops.to_jacobian(curve.generator());
  for (std::size_t w = 0; w < kWindows; ++w) {
    CurveOps::JPoint multiple = window_base;  // 1 * base
    for (std::size_t d = 1; d <= kEntriesPerWindow; ++d) {
      const AffinePoint affine = ops.to_affine(multiple);
      if (affine.infinity) throw std::logic_error("FixedBaseTable: unexpected infinity");
      table_[w][d - 1] =
          Entry{curve.fp().to_mont(affine.x), curve.fp().to_mont(affine.y)};
      if (d < kEntriesPerWindow) multiple = ops.add(multiple, window_base);
    }
    for (int i = 0; i < 4; ++i) window_base = ops.dbl(window_base);
  }
}

AffinePoint FixedBaseTable::mul(const bi::U256& k) const {
  count_op(Op::kEcMulBase);
  if (bi::cmp(k, curve_.order()) >= 0)
    throw std::invalid_argument("FixedBaseTable::mul: scalar out of range");
  const CurveOps ops(curve_);
  CurveOps::JPoint acc{curve_.fp().one(), curve_.fp().one(), bi::U256(0)};  // infinity
  for (std::size_t w = 0; w < kWindows; ++w) {
    const std::uint64_t digit = (k.w[w / 16] >> ((w % 16) * 4)) & 0x0f;
    if (digit == 0) continue;
    // Branchless entry selection: scan the whole window, blend with masks.
    Entry selected{};
    for (std::size_t d = 1; d <= kEntriesPerWindow; ++d) {
      const std::uint64_t match = digit == d ? 1u : 0u;
      selected.x = bi::ct_select(match, table_[w][d - 1].x, selected.x);
      selected.y = bi::ct_select(match, table_[w][d - 1].y, selected.y);
    }
    // Mixed addition: the table entry has an implicit Z = 1.
    const CurveOps::JPoint entry{selected.x, selected.y, curve_.fp().one()};
    acc = ops.add(acc, entry);
  }
  return ops.to_affine(acc);
}

const FixedBaseTable& FixedBaseTable::p256() {
  static const FixedBaseTable table(Curve::p256());
  return table;
}

}  // namespace ecqv::ec
