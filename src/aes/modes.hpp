// AES-128 block cipher modes (SP 800-38A): CBC with PKCS#7 padding, CBC
// without padding (block-aligned payloads such as the 64-byte STS auth
// responses), and CTR.
#pragma once

#include "aes/aes128.hpp"
#include "common/result.hpp"

namespace ecqv::aes {

/// CBC encrypt with PKCS#7 padding; output is a multiple of 16 bytes and
/// always at least one block longer than... exactly: pt.size() rounded up to
/// the next block boundary (a full padding block when already aligned).
Bytes cbc_encrypt(const Aes128& cipher, const Iv& iv, ByteView plaintext);

/// CBC decrypt + PKCS#7 unpad. Fails on bad length or malformed padding.
Result<Bytes> cbc_decrypt(const Aes128& cipher, const Iv& iv, ByteView ciphertext);

/// Raw CBC over block-aligned data (no padding). Used where the wire format
/// fixes the ciphertext length (e.g. 64-byte STS responses, Table II).
Bytes cbc_encrypt_raw(const Aes128& cipher, const Iv& iv, ByteView plaintext);
Result<Bytes> cbc_decrypt_raw(const Aes128& cipher, const Iv& iv, ByteView ciphertext);

/// CTR keystream en/decryption (involutory). The initial counter block is
/// `iv`; the counter increments big-endian over the whole block.
Bytes ctr_crypt(const Aes128& cipher, const Iv& iv, ByteView data);

/// In-place CTR, same counter semantics as ctr_crypt. Dispatches to the
/// 4-wide AES-NI kernel when aes_hw_available(); otherwise generates the
/// keystream into a multi-block scratch and XORs it in word-wise.
void ctr_xor(const Aes128& cipher, const Iv& iv, ByteSpan data);

}  // namespace ecqv::aes
