#include "aes/modes.hpp"

#include <cstring>
#include <stdexcept>

#include "aes/aesni.hpp"
#include "common/metrics.hpp"

namespace ecqv::aes {

Bytes cbc_encrypt_raw(const Aes128& cipher, const Iv& iv, ByteView plaintext) {
  if (plaintext.size() % kBlockSize != 0)
    throw std::invalid_argument("cbc_encrypt_raw: plaintext must be block-aligned");
  Bytes out(plaintext.begin(), plaintext.end());
  Block chain{};
  std::copy(iv.begin(), iv.end(), chain.begin());
  for (std::size_t off = 0; off < out.size(); off += kBlockSize) {
    for (std::size_t i = 0; i < kBlockSize; ++i) out[off + i] ^= chain[i];
    cipher.encrypt_block(ByteSpan(out.data() + off, kBlockSize));
    std::copy(out.begin() + static_cast<std::ptrdiff_t>(off),
              out.begin() + static_cast<std::ptrdiff_t>(off + kBlockSize), chain.begin());
  }
  return out;
}

Result<Bytes> cbc_decrypt_raw(const Aes128& cipher, const Iv& iv, ByteView ciphertext) {
  if (ciphertext.size() % kBlockSize != 0 || ciphertext.empty()) return Error::kBadLength;
  Bytes out(ciphertext.begin(), ciphertext.end());
  Block chain{};
  std::copy(iv.begin(), iv.end(), chain.begin());
  for (std::size_t off = 0; off < out.size(); off += kBlockSize) {
    Block next_chain{};
    std::copy(ciphertext.begin() + static_cast<std::ptrdiff_t>(off),
              ciphertext.begin() + static_cast<std::ptrdiff_t>(off + kBlockSize),
              next_chain.begin());
    cipher.decrypt_block(ByteSpan(out.data() + off, kBlockSize));
    for (std::size_t i = 0; i < kBlockSize; ++i) out[off + i] ^= chain[i];
    chain = next_chain;
  }
  return out;
}

Bytes cbc_encrypt(const Aes128& cipher, const Iv& iv, ByteView plaintext) {
  const std::size_t pad = kBlockSize - (plaintext.size() % kBlockSize);
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));
  return cbc_encrypt_raw(cipher, iv, padded);
}

Result<Bytes> cbc_decrypt(const Aes128& cipher, const Iv& iv, ByteView ciphertext) {
  auto raw = cbc_decrypt_raw(cipher, iv, ciphertext);
  if (!raw) return raw.error();
  Bytes& pt = raw.value();
  // Constant-time PKCS#7 check: the whole final block is scanned whatever
  // the claimed pad value says — a padding oracle cannot localize the first
  // bad byte through timing (the plaintext is secret-derived data here).
  const std::size_t pad = ct_pkcs7_pad_len(pt, kBlockSize);
  if (pad == 0) return Error::kDecodeFailed;
  pt.resize(pt.size() - pad);
  return pt;
}

namespace {

/// Big-endian increment across the full counter block.
inline void inc_wide(Block& counter) {
  for (int i = kBlockSize - 1; i >= 0; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}

/// Portable CTR body: keystream is generated into a multi-block scratch and
/// XORed word-wise, instead of the old one-Block-copy-per-16-bytes loop
/// with a byte-at-a-time XOR. Bit-identical output (same keystream, same
/// full-block big-endian counter); the differential test in test_aes.cpp
/// pins the AES-NI kernel to this body.
void ctr_xor_portable(const Aes128& cipher, Block& counter, ByteSpan data) {
  constexpr std::size_t kScratchBlocks = 8;
  alignas(16) std::array<std::uint8_t, kBlockSize * kScratchBlocks> ks;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t want = std::min(data.size() - off, ks.size());
    const std::size_t nblocks = (want + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::memcpy(ks.data() + b * kBlockSize, counter.data(), kBlockSize);
      inc_wide(counter);
    }
    for (std::size_t b = 0; b < nblocks; ++b)
      cipher.encrypt_block(ByteSpan(ks.data() + b * kBlockSize, kBlockSize));
    std::uint8_t* out = data.data() + off;
    std::size_t i = 0;
    for (; i + 8 <= want; i += 8) {
      std::uint64_t w, k;
      std::memcpy(&w, out + i, 8);
      std::memcpy(&k, ks.data() + i, 8);
      w ^= k;
      std::memcpy(out + i, &w, 8);
    }
    for (; i < want; ++i) out[i] ^= ks[i];
    off += want;
  }
}

}  // namespace

void ctr_xor(const Aes128& cipher, const Iv& iv, ByteSpan data) {
  Block counter{};
  std::copy(iv.begin(), iv.end(), counter.begin());
#if defined(ECQV_AES_AESNI)
  if (aes_hw_available()) {
    // The kernel bypasses encrypt_block, so the per-block op accounting the
    // device cost model relies on is bumped here in one shot.
    count_op(Op::kAesBlock, (data.size() + kBlockSize - 1) / kBlockSize);
    detail::aesni_ctr_xor(cipher.round_keys(), counter.data(), data.data(), data.size(),
                          /*wide_ctr=*/true);
    return;
  }
#endif
  ctr_xor_portable(cipher, counter, data);
}

Bytes ctr_crypt(const Aes128& cipher, const Iv& iv, ByteView data) {
  Bytes out(data.begin(), data.end());
  ctr_xor(cipher, iv, ByteSpan(out));
  return out;
}

}  // namespace ecqv::aes
