#include "aes/modes.hpp"

#include <stdexcept>

namespace ecqv::aes {

Bytes cbc_encrypt_raw(const Aes128& cipher, const Iv& iv, ByteView plaintext) {
  if (plaintext.size() % kBlockSize != 0)
    throw std::invalid_argument("cbc_encrypt_raw: plaintext must be block-aligned");
  Bytes out(plaintext.begin(), plaintext.end());
  Block chain{};
  std::copy(iv.begin(), iv.end(), chain.begin());
  for (std::size_t off = 0; off < out.size(); off += kBlockSize) {
    for (std::size_t i = 0; i < kBlockSize; ++i) out[off + i] ^= chain[i];
    cipher.encrypt_block(ByteSpan(out.data() + off, kBlockSize));
    std::copy(out.begin() + static_cast<std::ptrdiff_t>(off),
              out.begin() + static_cast<std::ptrdiff_t>(off + kBlockSize), chain.begin());
  }
  return out;
}

Result<Bytes> cbc_decrypt_raw(const Aes128& cipher, const Iv& iv, ByteView ciphertext) {
  if (ciphertext.size() % kBlockSize != 0 || ciphertext.empty()) return Error::kBadLength;
  Bytes out(ciphertext.begin(), ciphertext.end());
  Block chain{};
  std::copy(iv.begin(), iv.end(), chain.begin());
  for (std::size_t off = 0; off < out.size(); off += kBlockSize) {
    Block next_chain{};
    std::copy(ciphertext.begin() + static_cast<std::ptrdiff_t>(off),
              ciphertext.begin() + static_cast<std::ptrdiff_t>(off + kBlockSize),
              next_chain.begin());
    cipher.decrypt_block(ByteSpan(out.data() + off, kBlockSize));
    for (std::size_t i = 0; i < kBlockSize; ++i) out[off + i] ^= chain[i];
    chain = next_chain;
  }
  return out;
}

Bytes cbc_encrypt(const Aes128& cipher, const Iv& iv, ByteView plaintext) {
  const std::size_t pad = kBlockSize - (plaintext.size() % kBlockSize);
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));
  return cbc_encrypt_raw(cipher, iv, padded);
}

Result<Bytes> cbc_decrypt(const Aes128& cipher, const Iv& iv, ByteView ciphertext) {
  auto raw = cbc_decrypt_raw(cipher, iv, ciphertext);
  if (!raw) return raw.error();
  Bytes& pt = raw.value();
  const std::uint8_t pad = pt.back();
  if (pad == 0 || pad > kBlockSize || pad > pt.size()) return Error::kDecodeFailed;
  for (std::size_t i = pt.size() - pad; i < pt.size(); ++i)
    if (pt[i] != pad) return Error::kDecodeFailed;
  pt.resize(pt.size() - pad);
  return pt;
}

Bytes ctr_crypt(const Aes128& cipher, const Iv& iv, ByteView data) {
  Bytes out(data.begin(), data.end());
  Block counter{};
  std::copy(iv.begin(), iv.end(), counter.begin());
  std::size_t off = 0;
  while (off < out.size()) {
    Block keystream = counter;
    cipher.encrypt_block(keystream);
    const std::size_t take = std::min(kBlockSize, out.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] ^= keystream[i];
    off += take;
    // Big-endian increment across the full block.
    for (int i = kBlockSize - 1; i >= 0; --i) {
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
  }
  return out;
}

}  // namespace ecqv::aes
