// AES-NI kernel entry points (aes/aesni.cpp) behind the PR 7-style
// dispatch ladder: aesni → portable S-box, probed once per process via
// __builtin_cpu_supports, killed at run time by ECQV_DISABLE_AESNI and at
// compile time by ECQV_NO_AESNI (folded into -DECQV_PORTABLE_ONLY).
//
// Every kernel consumes the PORTABLE FIPS 197 key schedule bytes
// (Aes128::round_keys()) — the AES-NI encryption rounds use exactly the
// same round-key layout, so one expansion serves both tiers and the
// differential tests can pin hw output to the portable body byte-for-byte.
//
// This header is always includable; the kernels only exist when the
// compile gate is open, and callers must check aes_hw_available() (declared
// in aes/aes128.hpp) before entering them.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) && !defined(ECQV_NO_AESNI)
#define ECQV_AES_AESNI 1
#endif

namespace ecqv::aes::detail {

#if defined(ECQV_AES_AESNI)

/// One block, in place. rk = 176-byte expanded schedule.
void aesni_encrypt_block(const std::uint8_t* rk, std::uint8_t* block);

/// CTR keystream XORed over `data` (any length; the tail uses a partial
/// keystream block). Blocks are pipelined four wide — AES-NI's aesenc has
/// multi-cycle latency but single-cycle throughput, so independent streams
/// hide it. `wide_ctr` selects the counter increment:
///   true  — big-endian increment across the whole 16-byte block
///           (aes::ctr_crypt semantics; also CCM, whose counter field
///           never carries past its q trailing bytes for our sizes);
///   false — GCM inc32: only the last 4 bytes increment, big-endian.
/// `counter` is the FIRST counter block used and is advanced in place to
/// one past the last block consumed.
void aesni_ctr_xor(const std::uint8_t* rk, std::uint8_t counter[16], std::uint8_t* data,
                   std::size_t len, bool wide_ctr);

/// CBC-MAC absorption: state = E(state ^ block_i) over nblocks full blocks.
/// Inherently serial (each block depends on the last), but the AES-NI round
/// function still beats the S-box body ~10x. Used by the CCM suite.
void aesni_cbc_mac(const std::uint8_t* rk, std::uint8_t state[16], const std::uint8_t* blocks,
                   std::size_t nblocks);

#endif  // ECQV_AES_AESNI

}  // namespace ecqv::aes::detail
