#include "aes/cmac.hpp"

#include "common/metrics.hpp"

namespace ecqv::aes {

namespace {

// Left-shift a 128-bit block by one bit, returning the shifted-out MSB.
std::uint8_t shl_block(Block& b) {
  std::uint8_t carry = 0;
  for (int i = kBlockSize - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint8_t new_carry = static_cast<std::uint8_t>(b[idx] >> 7);
    b[idx] = static_cast<std::uint8_t>((b[idx] << 1) | carry);
    carry = new_carry;
  }
  return carry;
}

}  // namespace

CmacSubkeys cmac_subkeys(const Aes128& cipher) {
  Block l{};
  cipher.encrypt_block(l);
  CmacSubkeys sk;
  sk.k1 = l;
  if (shl_block(sk.k1) != 0) sk.k1[kBlockSize - 1] ^= 0x87;
  sk.k2 = sk.k1;
  if (shl_block(sk.k2) != 0) sk.k2[kBlockSize - 1] ^= 0x87;
  return sk;
}

Tag cmac(ByteView key, ByteView data) {
  count_op(Op::kCmac);
  const Aes128 cipher(key);
  const CmacSubkeys sk = cmac_subkeys(cipher);

  const std::size_t n_full = data.size() / kBlockSize;
  const std::size_t rem = data.size() % kBlockSize;
  const bool last_complete = data.size() != 0 && rem == 0;
  const std::size_t n_blocks = last_complete ? n_full : n_full + 1;

  Block x{};
  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    for (std::size_t i = 0; i < kBlockSize; ++i) x[i] ^= data[b * kBlockSize + i];
    cipher.encrypt_block(x);
  }
  // Last block: XOR with K1 when complete, pad + K2 otherwise.
  Block last{};
  const std::size_t last_off = (n_blocks - 1) * kBlockSize;
  if (last_complete) {
    for (std::size_t i = 0; i < kBlockSize; ++i)
      last[i] = static_cast<std::uint8_t>(data[last_off + i] ^ sk.k1[i]);
  } else {
    const std::size_t tail = data.size() - last_off;  // 0..15 (0 only when data empty)
    for (std::size_t i = 0; i < tail; ++i) last[i] = data[last_off + i];
    last[tail] = 0x80;
    for (std::size_t i = 0; i < kBlockSize; ++i) last[i] ^= sk.k2[i];
  }
  for (std::size_t i = 0; i < kBlockSize; ++i) x[i] ^= last[i];
  cipher.encrypt_block(x);
  return x;
}

}  // namespace ecqv::aes
