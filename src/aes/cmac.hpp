// AES-CMAC (RFC 4493 / SP 800-38B).
//
// Used by the SCIANC/PORAMB comparison protocols for symmetric
// authentication tags (paper §V-A: "128-bits for the AES and CMAC").
#pragma once

#include "aes/aes128.hpp"

namespace ecqv::aes {

using Tag = Block;  // 16-byte CMAC tag

/// One-shot AES-CMAC over `data` with a 16-byte key.
Tag cmac(ByteView key, ByteView data);

/// Subkey generation exposed for tests (RFC 4493 §2.3).
struct CmacSubkeys {
  Block k1{};
  Block k2{};
};
CmacSubkeys cmac_subkeys(const Aes128& cipher);

}  // namespace ecqv::aes
