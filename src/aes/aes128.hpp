// AES-128 block cipher (FIPS 197).
//
// Straightforward S-box/xtime implementation, matching what tiny-AES (the
// paper's symmetric library) does on the microcontrollers. Lookup-table
// cache-timing is out of scope here (see README "Security scope"); the
// device cost model prices symmetric work per block via Op::kAesBlock.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace ecqv::aes {

inline constexpr std::size_t kBlockSize = 16;
inline constexpr std::size_t kKeySize = 16;

using Block = std::array<std::uint8_t, kBlockSize>;
using Key = std::array<std::uint8_t, kKeySize>;
using Iv = std::array<std::uint8_t, kBlockSize>;

class Aes128 {
 public:
  explicit Aes128(ByteView key);  // requires key.size() == 16

  /// Encrypts/decrypts one 16-byte block in place.
  void encrypt_block(ByteSpan block) const;
  void decrypt_block(ByteSpan block) const;

 private:
  // 11 round keys of 16 bytes.
  std::array<std::uint8_t, 176> round_keys_{};
};

/// Builds a Key from a view (size-checked).
Key make_key(ByteView key);

}  // namespace ecqv::aes
