// AES-128 block cipher (FIPS 197).
//
// Straightforward S-box/xtime implementation, matching what tiny-AES (the
// paper's symmetric library) does on the microcontrollers. Lookup-table
// cache-timing is out of scope here (see README "Security scope"); the
// device cost model prices symmetric work per block via Op::kAesBlock.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace ecqv::aes {

inline constexpr std::size_t kBlockSize = 16;
inline constexpr std::size_t kKeySize = 16;

using Block = std::array<std::uint8_t, kBlockSize>;
using Key = std::array<std::uint8_t, kKeySize>;
using Iv = std::array<std::uint8_t, kBlockSize>;

class Aes128 {
 public:
  explicit Aes128(ByteView key);  // requires key.size() == 16

  /// The 176-byte expansion is equivalent key material: a discarded cipher
  /// (epoch rekey temporaries, SecureChannel replacement) must not leave it
  /// on the stack/heap, so destruction routes through the DSE-hardened wipe.
  ~Aes128() { wipe(); }
  Aes128(const Aes128&) = default;
  Aes128& operator=(const Aes128&) = default;

  /// Encrypts/decrypts one 16-byte block in place.
  void encrypt_block(ByteSpan block) const;
  void decrypt_block(ByteSpan block) const;

  /// The expanded FIPS 197 key schedule (11 round keys, 176 bytes). The
  /// portable expansion produces exactly the bytes the AES-NI encryption
  /// rounds consume, so the hardware kernels (aes/aesni.cpp) feed on this
  /// directly — one expansion serves both tiers.
  [[nodiscard]] const std::uint8_t* round_keys() const { return round_keys_.data(); }

  /// Wipes the expanded key schedule; the cipher is unusable after. Callers
  /// that cache an Aes128 alongside session keys (SecureChannel) wipe both
  /// together so no expansion of a retired key outlives its session.
  void wipe();

 private:
  // 11 round keys of 16 bytes.
  std::array<std::uint8_t, 176> round_keys_{};
};

/// True when the AES-NI block kernels are active: the CPU reports AES-NI
/// and the ECQV_DISABLE_AESNI environment kill switch is unset/0 (compile
/// gate ECQV_NO_AESNI, folded into -DECQV_PORTABLE_ONLY). When false every
/// mode runs the portable S-box body — bit-identical output either way.
[[nodiscard]] bool aes_hw_available();

/// Builds a Key from a view (size-checked).
Key make_key(ByteView key);

}  // namespace ecqv::aes
