// AES-NI kernels for the AEAD record hot path.
//
// This translation unit is the only one that emits AES instructions; the
// function-level target attribute keeps the rest of the build portable,
// exactly like bigint/mont8_avx512.cpp does for AVX-512 IFMA. Callers reach
// these only after aes_hw_available() (CPU probe + ECQV_DISABLE_AESNI kill
// switch) said yes.
//
// The CTR kernel runs four independent counter blocks through the round
// pipeline at once: aesenc latency is ~4 cycles but throughput is 1/cycle,
// so four interleaved streams keep the unit saturated — on 64-byte records
// the whole keystream is one pipelined pass.
#include "aes/aesni.hpp"

#if defined(ECQV_AES_AESNI)

#include <emmintrin.h>
#include <wmmintrin.h>

#include <cstring>

namespace ecqv::aes::detail {

namespace {

inline __m128i load_rk(const std::uint8_t* rk, int round) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * round));
}

/// Big-endian increment across the whole 16-byte block (aes::ctr_crypt).
inline void inc_wide(std::uint8_t counter[16]) {
  for (int i = 15; i >= 0; --i) {
    if (++counter[i] != 0) break;
  }
}

/// GCM inc32: big-endian increment of the trailing 4 bytes only.
inline void inc32(std::uint8_t counter[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[i] != 0) break;
  }
}

}  // namespace

__attribute__((target("aes,sse2"))) void aesni_encrypt_block(const std::uint8_t* rk,
                                                             std::uint8_t* block) {
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  s = _mm_xor_si128(s, load_rk(rk, 0));
  for (int round = 1; round < 10; ++round) s = _mm_aesenc_si128(s, load_rk(rk, round));
  s = _mm_aesenclast_si128(s, load_rk(rk, 10));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), s);
}

__attribute__((target("aes,sse2"))) void aesni_ctr_xor(const std::uint8_t* rk,
                                                       std::uint8_t counter[16],
                                                       std::uint8_t* data, std::size_t len,
                                                       bool wide_ctr) {
  __m128i keys[11];
  for (int round = 0; round <= 10; ++round) keys[round] = load_rk(rk, round);

  const auto advance = [&](std::uint8_t c[16]) { wide_ctr ? inc_wide(c) : inc32(c); };

  // Four-wide pipelined full blocks.
  while (len >= 64) {
    alignas(16) std::uint8_t ctrs[4][16];
    for (auto& ctr : ctrs) {
      std::memcpy(ctr, counter, 16);
      advance(counter);
    }
    __m128i s0 = _mm_xor_si128(_mm_load_si128(reinterpret_cast<const __m128i*>(ctrs[0])), keys[0]);
    __m128i s1 = _mm_xor_si128(_mm_load_si128(reinterpret_cast<const __m128i*>(ctrs[1])), keys[0]);
    __m128i s2 = _mm_xor_si128(_mm_load_si128(reinterpret_cast<const __m128i*>(ctrs[2])), keys[0]);
    __m128i s3 = _mm_xor_si128(_mm_load_si128(reinterpret_cast<const __m128i*>(ctrs[3])), keys[0]);
    for (int round = 1; round < 10; ++round) {
      s0 = _mm_aesenc_si128(s0, keys[round]);
      s1 = _mm_aesenc_si128(s1, keys[round]);
      s2 = _mm_aesenc_si128(s2, keys[round]);
      s3 = _mm_aesenc_si128(s3, keys[round]);
    }
    s0 = _mm_aesenclast_si128(s0, keys[10]);
    s1 = _mm_aesenclast_si128(s1, keys[10]);
    s2 = _mm_aesenclast_si128(s2, keys[10]);
    s3 = _mm_aesenclast_si128(s3, keys[10]);
    __m128i* out = reinterpret_cast<__m128i*>(data);
    _mm_storeu_si128(out + 0, _mm_xor_si128(_mm_loadu_si128(out + 0), s0));
    _mm_storeu_si128(out + 1, _mm_xor_si128(_mm_loadu_si128(out + 1), s1));
    _mm_storeu_si128(out + 2, _mm_xor_si128(_mm_loadu_si128(out + 2), s2));
    _mm_storeu_si128(out + 3, _mm_xor_si128(_mm_loadu_si128(out + 3), s3));
    data += 64;
    len -= 64;
  }

  // Remaining blocks (including a partial tail) one at a time.
  while (len > 0) {
    alignas(16) std::uint8_t ks[16];
    std::memcpy(ks, counter, 16);
    advance(counter);
    __m128i s = _mm_xor_si128(_mm_load_si128(reinterpret_cast<const __m128i*>(ks)), keys[0]);
    for (int round = 1; round < 10; ++round) s = _mm_aesenc_si128(s, keys[round]);
    s = _mm_aesenclast_si128(s, keys[10]);
    _mm_store_si128(reinterpret_cast<__m128i*>(ks), s);
    const std::size_t take = len < 16 ? len : 16;
    for (std::size_t i = 0; i < take; ++i) data[i] ^= ks[i];
    data += take;
    len -= take;
  }
}

__attribute__((target("aes,sse2"))) void aesni_cbc_mac(const std::uint8_t* rk,
                                                       std::uint8_t state[16],
                                                       const std::uint8_t* blocks,
                                                       std::size_t nblocks) {
  __m128i keys[11];
  for (int round = 0; round <= 10; ++round) keys[round] = load_rk(rk, round);
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  for (std::size_t b = 0; b < nblocks; ++b) {
    s = _mm_xor_si128(s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16 * b)));
    s = _mm_xor_si128(s, keys[0]);
    for (int round = 1; round < 10; ++round) s = _mm_aesenc_si128(s, keys[round]);
    s = _mm_aesenclast_si128(s, keys[10]);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), s);
}

}  // namespace ecqv::aes::detail

#endif  // ECQV_AES_AESNI
