// AES-128-CCM (RFC 3610 / SP 800-38C) with detached, truncatable tags.
//
// CCM = CBC-MAC over B0 ‖ encoded-AAD ‖ plaintext, then CTR encryption; the
// CBC-MAC rides the AES-NI serial kernel when available and the CTR body
// the 4-wide kernel — both fall back to the portable S-box path with
// bit-identical output. Nonce length 7..13 is accepted so the RFC 3610
// packet vectors run as-is; the record layer uses 12-byte nonces (L=3).
#pragma once

#include "aes/aes128.hpp"

namespace ecqv::aead {

inline constexpr std::size_t kCcmTagSize = 16;

/// Seal: ct_out.size() == plaintext.size(); tag_out.size() even, in [4,16].
/// nonce.size() in [7,13]; the length field spans L = 15 - nonce.size()
/// bytes, so plaintext.size() must fit in L bytes.
void ccm_seal(const aes::Aes128& cipher, ByteView nonce, ByteView aad, ByteView plaintext,
              ByteSpan ct_out, ByteSpan tag_out);

/// Open: recomputes the tag from the decrypted plaintext and compares in
/// constant time. Returns false — and wipes pt_out — on mismatch, so no
/// unauthenticated plaintext escapes. pt_out.size() == ciphertext.size().
[[nodiscard]] bool ccm_open(const aes::Aes128& cipher, ByteView nonce, ByteView aad,
                            ByteView ciphertext, ByteView tag, ByteSpan pt_out);

}  // namespace ecqv::aead
