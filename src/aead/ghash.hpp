// GHASH — the GF(2^128) universal hash underneath AES-GCM (SP 800-38D).
//
// Same two-tier shape as the AES block path: a portable shift-and-xor
// multiplier that is the reference semantics, and a CLMUL kernel
// (aead/ghash_clmul.cpp) behind a runtime probe. Kill switch
// ECQV_DISABLE_CLMUL, compile gate ECQV_NO_CLMUL (folded into
// -DECQV_PORTABLE_ONLY); the differential tests in test_aead.cpp pin the
// CLMUL output to the portable body byte-for-byte.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

#if defined(__x86_64__) && !defined(ECQV_NO_CLMUL)
#define ECQV_GHASH_CLMUL 1
#endif

namespace ecqv::aead {

/// Incremental GHASH over 16-byte blocks. GCM bit convention: the MSB of
/// byte 0 is the x^0 coefficient, reduction polynomial R = 0xE1 << 120.
class Ghash {
 public:
  /// h = hash subkey H = E_K(0^128), 16 bytes.
  explicit Ghash(ByteView h);

  /// Absorbs `data`, zero-padding the final partial block. GCM pads the AAD
  /// and the ciphertext independently, so each absorb_padded() call starts
  /// on a fresh block boundary.
  void absorb_padded(ByteView data);

  /// Absorbs the closing length block: bitlen(aad) ‖ bitlen(ct), big-endian.
  void absorb_lengths(std::uint64_t aad_bytes, std::uint64_t ct_bytes);

  /// Current accumulator Y (the untruncated GHASH output).
  void digest(ByteSpan out16) const;

 private:
  void absorb_blocks(const std::uint8_t* blocks, std::size_t nblocks);

  std::array<std::uint8_t, 16> h_{};
  std::array<std::uint8_t, 16> y_{};
};

/// True when the CLMUL GHASH kernel is active: CPU reports PCLMULQDQ+SSSE3
/// and ECQV_DISABLE_CLMUL is unset/0. When false the portable multiplier
/// runs — bit-identical output either way.
[[nodiscard]] bool ghash_hw_available();

namespace detail {

/// Portable constant-time GF(2^128) multiply: x = x · h (GCM convention).
void gf128_mul(std::uint8_t x[16], const std::uint8_t h[16]);

#if defined(ECQV_GHASH_CLMUL)
/// CLMUL batch absorb: y = (y ^ b_i) · h folded over nblocks full blocks.
void ghash_clmul_blocks(const std::uint8_t h[16], std::uint8_t y[16],
                        const std::uint8_t* blocks, std::size_t nblocks);
#endif

}  // namespace detail

}  // namespace ecqv::aead
