// AEAD suite registry for the record layer.
//
// A suite is one byte on the wire. Suite 0x00 is the frozen legacy v2
// record (AES-128-CTR + HMAC-SHA256, encrypt-then-MAC) whose engine lives
// in core/secure_channel.cpp — its registry entry carries metadata only.
// Suites 0x01+ are the v3 AEAD records: the registry supplies seal/open
// entry points with detached, truncatable tags, and SecureChannel frames
// suite ‖ epoch ‖ flags ‖ seq as the AAD.
//
// Negotiation is a bitmask byte exchanged inside the STS handshake (bit i
// offers suite id i): the initiator offers, the responder confirms the
// highest suite common to both masks. Bit 0 (legacy) is always implied, so
// a peer that predates v3 records — or one configured legacy-only — simply
// negotiates down to the v2 wire format.
#pragma once

#include "aes/aes128.hpp"

namespace ecqv::aead {

enum class SuiteId : std::uint8_t {
  kCtrHmac = 0x00,      // legacy v2 record: AES-128-CTR + HMAC-SHA256 (45 B overhead)
  kGcm128 = 0x01,       // v3 record: AES-128-GCM, 16-byte tag (30 B overhead)
  kCcm128Tag16 = 0x02,  // v3 record: AES-128-CCM, 16-byte tag (30 B overhead)
  kCcm128Tag8 = 0x03,   // v3 record: AES-128-CCM, 8-byte tag (22 B overhead)
};

/// Offer bitmask: bit i offers suite id i. Legacy is always implied.
inline constexpr std::uint8_t kOfferLegacy = 0x01;
inline constexpr std::uint8_t kOfferAll = 0x0F;

struct Suite {
  using SealFn = void (*)(const aes::Aes128& cipher, const std::uint8_t nonce[12], ByteView aad,
                          ByteView plaintext, std::uint8_t* ct_out, std::uint8_t* tag_out,
                          std::size_t tag_len);
  using OpenFn = bool (*)(const aes::Aes128& cipher, const std::uint8_t nonce[12], ByteView aad,
                          ByteView ciphertext, const std::uint8_t* tag, std::size_t tag_len,
                          std::uint8_t* pt_out);

  SuiteId id;
  const char* name;
  std::size_t tag_len;  // tag bytes on the wire
  SealFn seal;          // nullptr for kCtrHmac (legacy path in SecureChannel)
  OpenFn open;
};

/// Registry lookup by wire byte; nullptr for unknown ids.
[[nodiscard]] const Suite* find_suite(std::uint8_t id);

/// True when `mask` offers `id` (legacy counts as always offered).
[[nodiscard]] bool offered(std::uint8_t mask, SuiteId id);

/// Highest suite id offered by both masks; bit 0 is forced common, so the
/// result is always a valid suite and never worse than legacy.
[[nodiscard]] SuiteId negotiate(std::uint8_t offered_mask, std::uint8_t supported_mask);

}  // namespace ecqv::aead
