#include "aead/gcm.hpp"

#include <cstring>
#include <stdexcept>

#include "aead/ghash.hpp"
#include "aes/aesni.hpp"
#include "common/ct_equal.hpp"
#include "common/metrics.hpp"
#include "common/wipe.hpp"

namespace ecqv::aead {

namespace {

/// GCM inc32: big-endian increment of the trailing 4 counter bytes.
inline void inc32(aes::Block& counter) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}

/// CTR with inc32 semantics, starting from `counter` (consumed in place).
void gcm_ctr(const aes::Aes128& cipher, aes::Block& counter, ByteSpan data) {
#if defined(ECQV_AES_AESNI)
  if (aes::aes_hw_available()) {
    count_op(Op::kAesBlock, (data.size() + aes::kBlockSize - 1) / aes::kBlockSize);
    aes::detail::aesni_ctr_xor(cipher.round_keys(), counter.data(), data.data(), data.size(),
                               /*wide_ctr=*/false);
    return;
  }
#endif
  std::size_t off = 0;
  while (off < data.size()) {
    aes::Block ks = counter;
    cipher.encrypt_block(ByteSpan(ks));
    inc32(counter);
    const std::size_t take = std::min(data.size() - off, aes::kBlockSize);
    for (std::size_t i = 0; i < take; ++i) data[off + i] ^= ks[i];
    off += take;
  }
}

/// Full 16-byte GCM tag for (nonce, aad, ct). Also derives H and J0.
void gcm_tag(const aes::Aes128& cipher, ByteView nonce, ByteView aad, ByteView ct,
             aes::Block& tag_out) {
  aes::Block h{};
  cipher.encrypt_block(ByteSpan(h));

  Ghash ghash{ByteView(h)};
  ghash.absorb_padded(aad);
  ghash.absorb_padded(ct);
  ghash.absorb_lengths(aad.size(), ct.size());
  ghash.digest(ByteSpan(tag_out));

  aes::Block j0{};
  std::memcpy(j0.data(), nonce.data(), kGcmNonceSize);
  j0[15] = 0x01;
  cipher.encrypt_block(ByteSpan(j0));
  for (std::size_t i = 0; i < 16; ++i) tag_out[i] ^= j0[i];
  secure_wipe(ByteSpan(h));
}

void check_args(ByteView nonce, std::size_t tag_len) {
  if (nonce.size() != kGcmNonceSize) throw std::invalid_argument("gcm: nonce must be 12 bytes");
  if (tag_len < 4 || tag_len > kGcmTagSize) throw std::invalid_argument("gcm: tag must be 4..16");
}

}  // namespace

void gcm_seal(const aes::Aes128& cipher, ByteView nonce, ByteView aad, ByteView plaintext,
              ByteSpan ct_out, ByteSpan tag_out) {
  check_args(nonce, tag_out.size());
  if (ct_out.size() != plaintext.size()) throw std::invalid_argument("gcm_seal: ct size");

  aes::Block counter{};
  std::memcpy(counter.data(), nonce.data(), kGcmNonceSize);
  counter[15] = 0x02;  // message blocks start at inc32(J0)
  if (!plaintext.empty()) std::memcpy(ct_out.data(), plaintext.data(), plaintext.size());
  gcm_ctr(cipher, counter, ct_out);

  aes::Block tag{};
  gcm_tag(cipher, nonce, aad, ByteView(ct_out.data(), ct_out.size()), tag);
  std::memcpy(tag_out.data(), tag.data(), tag_out.size());
  secure_wipe(ByteSpan(tag));
}

bool gcm_open(const aes::Aes128& cipher, ByteView nonce, ByteView aad, ByteView ciphertext,
              ByteView tag, ByteSpan pt_out) {
  check_args(nonce, tag.size());
  if (pt_out.size() != ciphertext.size()) throw std::invalid_argument("gcm_open: pt size");

  aes::Block expect{};
  gcm_tag(cipher, nonce, aad, ciphertext, expect);
  const bool ok = ct_equal(ByteView(expect.data(), tag.size()), tag);
  secure_wipe(ByteSpan(expect));
  if (!ok) return false;

  aes::Block counter{};
  std::memcpy(counter.data(), nonce.data(), kGcmNonceSize);
  counter[15] = 0x02;
  if (!ciphertext.empty()) std::memcpy(pt_out.data(), ciphertext.data(), ciphertext.size());
  gcm_ctr(cipher, counter, pt_out);
  return true;
}

}  // namespace ecqv::aead
