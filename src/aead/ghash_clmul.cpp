// PCLMULQDQ GHASH kernel — the only translation unit that emits carry-less
// multiply instructions, mirroring how aes/aesni.cpp isolates AES-NI.
//
// GCM treats blocks as bit-reflected polynomials; the classic way to use
// CLMUL (Gueron & Kounavis, "Intel carry-less multiplication and its usage
// for computing the GCM mode") is to byte-reverse each operand, do a plain
// 128x128 carry-less multiply, shift the 256-bit product left by one bit to
// absorb the reflection, and reduce modulo x^128 + x^7 + x^2 + x + 1.
#include "aead/ghash.hpp"

#if defined(ECQV_GHASH_CLMUL)

#include <emmintrin.h>
#include <tmmintrin.h>
#include <wmmintrin.h>

namespace ecqv::aead::detail {

namespace {

__attribute__((target("ssse3"))) inline __m128i bswap128(__m128i x) {
  const __m128i rev = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  return _mm_shuffle_epi8(x, rev);
}

__attribute__((target("pclmul,sse2"))) inline __m128i gfmul(__m128i a, __m128i b) {
  // 128x128 -> 256-bit carry-less product via four 64x64 CLMULs.
  __m128i lo = _mm_clmulepi64_si128(a, b, 0x00);
  __m128i m1 = _mm_clmulepi64_si128(a, b, 0x10);
  __m128i m2 = _mm_clmulepi64_si128(a, b, 0x01);
  __m128i hi = _mm_clmulepi64_si128(a, b, 0x11);
  __m128i mid = _mm_xor_si128(m1, m2);
  lo = _mm_xor_si128(lo, _mm_slli_si128(mid, 8));
  hi = _mm_xor_si128(hi, _mm_srli_si128(mid, 8));

  // Shift the 256-bit product left by one bit (bit-reflection fixup).
  __m128i lo_carry = _mm_srli_epi32(lo, 31);
  __m128i hi_carry = _mm_srli_epi32(hi, 31);
  lo = _mm_slli_epi32(lo, 1);
  hi = _mm_slli_epi32(hi, 1);
  __m128i cross = _mm_srli_si128(lo_carry, 12);
  hi_carry = _mm_slli_si128(hi_carry, 4);
  lo_carry = _mm_slli_si128(lo_carry, 4);
  lo = _mm_or_si128(lo, lo_carry);
  hi = _mm_or_si128(hi, hi_carry);
  hi = _mm_or_si128(hi, cross);

  // Reduce modulo x^128 + x^7 + x^2 + x + 1.
  __m128i t7 = _mm_slli_epi32(lo, 31);
  __m128i t8 = _mm_slli_epi32(lo, 30);
  __m128i t9 = _mm_slli_epi32(lo, 25);
  t7 = _mm_xor_si128(t7, t8);
  t7 = _mm_xor_si128(t7, t9);
  t8 = _mm_srli_si128(t7, 4);
  t7 = _mm_slli_si128(t7, 12);
  lo = _mm_xor_si128(lo, t7);
  __m128i r1 = _mm_srli_epi32(lo, 1);
  __m128i r2 = _mm_srli_epi32(lo, 2);
  __m128i r7 = _mm_srli_epi32(lo, 7);
  r1 = _mm_xor_si128(r1, r2);
  r1 = _mm_xor_si128(r1, r7);
  r1 = _mm_xor_si128(r1, t8);
  lo = _mm_xor_si128(lo, r1);
  return _mm_xor_si128(hi, lo);
}

}  // namespace

__attribute__((target("pclmul,ssse3"))) void ghash_clmul_blocks(const std::uint8_t h[16],
                                                                std::uint8_t y[16],
                                                                const std::uint8_t* blocks,
                                                                std::size_t nblocks) {
  const __m128i hh = bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(h)));
  __m128i acc = bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(y)));
  for (std::size_t b = 0; b < nblocks; ++b) {
    const __m128i blk =
        bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16 * b)));
    acc = gfmul(_mm_xor_si128(acc, blk), hh);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(y), bswap128(acc));
}

}  // namespace ecqv::aead::detail

#endif  // ECQV_GHASH_CLMUL
