#include "aead/ghash.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ecqv::aead {

namespace {

bool env_disables_clmul() {
  const char* env = std::getenv("ECQV_DISABLE_CLMUL");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

bool ghash_hw_available() {
#if defined(ECQV_GHASH_CLMUL)
  static const bool ok =
      __builtin_cpu_supports("pclmul") != 0 && __builtin_cpu_supports("ssse3") != 0;
  return ok && !env_disables_clmul();
#else
  return false;
#endif
}

namespace detail {

void gf128_mul(std::uint8_t x[16], const std::uint8_t h[16]) {
  // Mask-based shift-and-xor: every iteration does the same work whatever
  // the bit values are, so the multiply leaks nothing about X or H.
  std::uint64_t vh = load_be64(ByteView(h, 8));
  std::uint64_t vl = load_be64(ByteView(h + 8, 8));
  std::uint64_t zh = 0, zl = 0;
  for (int i = 0; i < 16; ++i) {
    const std::uint8_t byte = x[i];
    for (int bit = 7; bit >= 0; --bit) {
      const std::uint64_t mask = 0 - static_cast<std::uint64_t>((byte >> bit) & 1u);
      zh ^= vh & mask;
      zl ^= vl & mask;
      const std::uint64_t carry = 0 - (vl & 1u);
      vl = (vl >> 1) | (vh << 63);
      vh = (vh >> 1) ^ (carry & 0xE100000000000000ULL);
    }
  }
  store_be64(ByteSpan(x, 8), zh);
  store_be64(ByteSpan(x + 8, 8), zl);
}

}  // namespace detail

Ghash::Ghash(ByteView h) {
  if (h.size() != 16) throw std::invalid_argument("Ghash: subkey must be 16 bytes");
  std::memcpy(h_.data(), h.data(), 16);
}

void Ghash::absorb_blocks(const std::uint8_t* blocks, std::size_t nblocks) {
  if (nblocks == 0) return;
#if defined(ECQV_GHASH_CLMUL)
  if (ghash_hw_available()) {
    detail::ghash_clmul_blocks(h_.data(), y_.data(), blocks, nblocks);
    return;
  }
#endif
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (std::size_t i = 0; i < 16; ++i) y_[i] ^= blocks[16 * b + i];
    detail::gf128_mul(y_.data(), h_.data());
  }
}

void Ghash::absorb_padded(ByteView data) {
  const std::size_t full = data.size() / 16;
  absorb_blocks(data.data(), full);
  const std::size_t tail = data.size() - full * 16;
  if (tail != 0) {
    std::array<std::uint8_t, 16> last{};
    std::memcpy(last.data(), data.data() + full * 16, tail);
    absorb_blocks(last.data(), 1);
  }
}

void Ghash::absorb_lengths(std::uint64_t aad_bytes, std::uint64_t ct_bytes) {
  std::array<std::uint8_t, 16> block{};
  store_be64(ByteSpan(block.data(), 8), aad_bytes * 8);
  store_be64(ByteSpan(block.data() + 8, 8), ct_bytes * 8);
  absorb_blocks(block.data(), 1);
}

void Ghash::digest(ByteSpan out16) const {
  if (out16.size() != 16) throw std::invalid_argument("Ghash::digest: need 16 bytes");
  std::memcpy(out16.data(), y_.data(), 16);
}

}  // namespace ecqv::aead
