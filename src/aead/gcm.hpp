// AES-128-GCM (SP 800-38D) with detached, truncatable tags.
//
// Built from the two-tier primitives underneath: the AES-CTR body rides the
// AES-NI 4-wide kernel when available, GHASH rides CLMUL — each falling back
// to the portable reference with bit-identical output. Only 12-byte nonces
// are supported (J0 = nonce ‖ 0x00000001), which is all the record layer and
// the NIST KAT set we carry need.
#pragma once

#include "aes/aes128.hpp"

namespace ecqv::aead {

inline constexpr std::size_t kGcmNonceSize = 12;
inline constexpr std::size_t kGcmTagSize = 16;

/// Seal: ct_out.size() == plaintext.size(); tag_out.size() in [4,16] — the
/// full 16-byte tag is computed and truncated to tag_out.size().
void gcm_seal(const aes::Aes128& cipher, ByteView nonce, ByteView aad, ByteView plaintext,
              ByteSpan ct_out, ByteSpan tag_out);

/// Open: verifies `tag` (4..16 bytes, constant-time compare) BEFORE
/// decrypting into pt_out (same size as ciphertext); on mismatch returns
/// false with pt_out untouched — no unauthenticated plaintext escapes.
[[nodiscard]] bool gcm_open(const aes::Aes128& cipher, ByteView nonce, ByteView aad,
                            ByteView ciphertext, ByteView tag, ByteSpan pt_out);

}  // namespace ecqv::aead
