#include "aead/suite.hpp"

#include <array>

#include "aead/ccm.hpp"
#include "aead/gcm.hpp"

namespace ecqv::aead {

namespace {

void gcm_seal_adapter(const aes::Aes128& cipher, const std::uint8_t nonce[12], ByteView aad,
                      ByteView plaintext, std::uint8_t* ct_out, std::uint8_t* tag_out,
                      std::size_t tag_len) {
  gcm_seal(cipher, ByteView(nonce, kGcmNonceSize), aad, plaintext,
           ByteSpan(ct_out, plaintext.size()), ByteSpan(tag_out, tag_len));
}

bool gcm_open_adapter(const aes::Aes128& cipher, const std::uint8_t nonce[12], ByteView aad,
                      ByteView ciphertext, const std::uint8_t* tag, std::size_t tag_len,
                      std::uint8_t* pt_out) {
  return gcm_open(cipher, ByteView(nonce, kGcmNonceSize), aad, ciphertext,
                  ByteView(tag, tag_len), ByteSpan(pt_out, ciphertext.size()));
}

void ccm_seal_adapter(const aes::Aes128& cipher, const std::uint8_t nonce[12], ByteView aad,
                      ByteView plaintext, std::uint8_t* ct_out, std::uint8_t* tag_out,
                      std::size_t tag_len) {
  ccm_seal(cipher, ByteView(nonce, 12), aad, plaintext, ByteSpan(ct_out, plaintext.size()),
           ByteSpan(tag_out, tag_len));
}

bool ccm_open_adapter(const aes::Aes128& cipher, const std::uint8_t nonce[12], ByteView aad,
                      ByteView ciphertext, const std::uint8_t* tag, std::size_t tag_len,
                      std::uint8_t* pt_out) {
  return ccm_open(cipher, ByteView(nonce, 12), aad, ciphertext, ByteView(tag, tag_len),
                  ByteSpan(pt_out, ciphertext.size()));
}

constexpr std::array<Suite, 4> kSuites = {{
    {SuiteId::kCtrHmac, "ctr-hmac-sha256", 32, nullptr, nullptr},
    {SuiteId::kGcm128, "aes128-gcm", 16, gcm_seal_adapter, gcm_open_adapter},
    {SuiteId::kCcm128Tag16, "aes128-ccm", 16, ccm_seal_adapter, ccm_open_adapter},
    {SuiteId::kCcm128Tag8, "aes128-ccm-8", 8, ccm_seal_adapter, ccm_open_adapter},
}};

}  // namespace

const Suite* find_suite(std::uint8_t id) {
  for (const Suite& s : kSuites) {
    if (static_cast<std::uint8_t>(s.id) == id) return &s;
  }
  return nullptr;
}

bool offered(std::uint8_t mask, SuiteId id) {
  const auto bit = static_cast<std::uint8_t>(id);
  if (bit > 7) return false;
  return id == SuiteId::kCtrHmac || (mask & (1u << bit)) != 0;
}

SuiteId negotiate(std::uint8_t offered_mask, std::uint8_t supported_mask) {
  const std::uint8_t common =
      static_cast<std::uint8_t>((offered_mask & supported_mask & kOfferAll) | kOfferLegacy);
  for (int bit = 3; bit >= 0; --bit) {
    if (common & (1u << bit)) return static_cast<SuiteId>(bit);
  }
  return SuiteId::kCtrHmac;
}

}  // namespace ecqv::aead
