#include "aead/ccm.hpp"

#include <cstring>
#include <stdexcept>

#include "aes/aesni.hpp"
#include "aes/modes.hpp"
#include "common/ct_equal.hpp"
#include "common/metrics.hpp"
#include "common/wipe.hpp"

namespace ecqv::aead {

namespace {

/// CBC-MAC absorption over block-aligned input: state = E(state ^ block_i).
void cbc_mac_absorb(const aes::Aes128& cipher, aes::Block& state, ByteView blocks) {
#if defined(ECQV_AES_AESNI)
  if (aes::aes_hw_available()) {
    count_op(Op::kAesBlock, blocks.size() / aes::kBlockSize);
    aes::detail::aesni_cbc_mac(cipher.round_keys(), state.data(), blocks.data(),
                               blocks.size() / aes::kBlockSize);
    return;
  }
#endif
  for (std::size_t off = 0; off < blocks.size(); off += aes::kBlockSize) {
    for (std::size_t i = 0; i < aes::kBlockSize; ++i) state[i] ^= blocks[off + i];
    cipher.encrypt_block(ByteSpan(state));
  }
}

struct CcmParams {
  std::size_t len_bytes;  // L = 15 - nonce length
};

CcmParams check_args(ByteView nonce, std::size_t msg_len, std::size_t aad_len,
                     std::size_t tag_len) {
  if (nonce.size() < 7 || nonce.size() > 13)
    throw std::invalid_argument("ccm: nonce must be 7..13 bytes");
  if (tag_len < 4 || tag_len > kCcmTagSize || tag_len % 2 != 0)
    throw std::invalid_argument("ccm: tag must be an even length in 4..16");
  const std::size_t len_bytes = 15 - nonce.size();
  if (len_bytes < 8 && msg_len >> (8 * len_bytes) != 0)
    throw std::invalid_argument("ccm: message too long for nonce length");
  // RFC 3610 §2.2 short AAD encoding (2-byte length) covers < 2^16 - 2^8;
  // the record layer's 14-byte headers never get near that.
  if (aad_len >= 0xFF00) throw std::invalid_argument("ccm: aad too long");
  return {len_bytes};
}

/// Full 16-byte CCM tag: X = CBC-MAC(B0 ‖ encoded-AAD ‖ padded message),
/// then tag = X ^ E(A0) (truncation is the caller's job).
void ccm_tag(const aes::Aes128& cipher, ByteView nonce, ByteView aad, ByteView msg,
             std::size_t tag_len, const CcmParams& p, aes::Block& tag_out) {
  // B0: flags ‖ nonce ‖ l(m). Flags = Adata | ((M-2)/2)<<3 | (L-1).
  Bytes mac_input;
  mac_input.reserve(16 + (aad.empty() ? 0 : (2 + aad.size() + 15) / 16 * 16) +
                    (msg.size() + 15) / 16 * 16);
  mac_input.resize(16, 0);
  mac_input[0] = static_cast<std::uint8_t>((aad.empty() ? 0x00 : 0x40) |
                                           (((tag_len - 2) / 2) << 3) | (p.len_bytes - 1));
  std::memcpy(mac_input.data() + 1, nonce.data(), nonce.size());
  std::size_t len = msg.size();
  for (std::size_t i = 0; i < p.len_bytes; ++i) {
    mac_input[15 - i] = static_cast<std::uint8_t>(len & 0xFF);
    len >>= 8;
  }
  if (!aad.empty()) {
    const std::size_t start = mac_input.size();
    mac_input.resize(start + (2 + aad.size() + 15) / 16 * 16, 0);
    store_be16(ByteSpan(mac_input.data() + start, 2), static_cast<std::uint16_t>(aad.size()));
    std::memcpy(mac_input.data() + start + 2, aad.data(), aad.size());
  }
  if (!msg.empty()) {
    const std::size_t start = mac_input.size();
    mac_input.resize(start + (msg.size() + 15) / 16 * 16, 0);
    std::memcpy(mac_input.data() + start, msg.data(), msg.size());
  }

  aes::Block x{};
  cbc_mac_absorb(cipher, x, mac_input);
  secure_wipe(ByteSpan(mac_input));

  // A0 = ctr-flags ‖ nonce ‖ counter 0; S0 = E(A0) masks the tag.
  aes::Block a0{};
  a0[0] = static_cast<std::uint8_t>(p.len_bytes - 1);
  std::memcpy(a0.data() + 1, nonce.data(), nonce.size());
  cipher.encrypt_block(ByteSpan(a0));
  for (std::size_t i = 0; i < 16; ++i) tag_out[i] = static_cast<std::uint8_t>(x[i] ^ a0[i]);
  secure_wipe(ByteSpan(x));
}

/// CTR keystream over the message, counters A1, A2, … The full-block
/// big-endian increment in aes::ctr_xor matches the L-byte counter field
/// exactly because the counter never carries out of its L trailing bytes
/// for any message the length check admits.
void ccm_ctr(const aes::Aes128& cipher, ByteView nonce, const CcmParams& p, ByteSpan data) {
  aes::Iv a1{};
  a1[0] = static_cast<std::uint8_t>(p.len_bytes - 1);
  std::memcpy(a1.data() + 1, nonce.data(), nonce.size());
  a1[15] = 0x01;
  aes::ctr_xor(cipher, a1, data);
}

}  // namespace

void ccm_seal(const aes::Aes128& cipher, ByteView nonce, ByteView aad, ByteView plaintext,
              ByteSpan ct_out, ByteSpan tag_out) {
  const CcmParams p = check_args(nonce, plaintext.size(), aad.size(), tag_out.size());
  if (ct_out.size() != plaintext.size()) throw std::invalid_argument("ccm_seal: ct size");

  aes::Block tag{};
  ccm_tag(cipher, nonce, aad, plaintext, tag_out.size(), p, tag);
  std::memcpy(tag_out.data(), tag.data(), tag_out.size());
  secure_wipe(ByteSpan(tag));

  if (!plaintext.empty()) std::memcpy(ct_out.data(), plaintext.data(), plaintext.size());
  ccm_ctr(cipher, nonce, p, ct_out);
}

bool ccm_open(const aes::Aes128& cipher, ByteView nonce, ByteView aad, ByteView ciphertext,
              ByteView tag, ByteSpan pt_out) {
  const CcmParams p = check_args(nonce, ciphertext.size(), aad.size(), tag.size());
  if (pt_out.size() != ciphertext.size()) throw std::invalid_argument("ccm_open: pt size");

  // CCM authenticates the plaintext, so decrypt first, then recompute.
  if (!ciphertext.empty()) std::memcpy(pt_out.data(), ciphertext.data(), ciphertext.size());
  ccm_ctr(cipher, nonce, p, pt_out);

  aes::Block expect{};
  ccm_tag(cipher, nonce, aad, ByteView(pt_out.data(), pt_out.size()), tag.size(), p, expect);
  const bool ok = ct_equal(ByteView(expect.data(), tag.size()), tag);
  secure_wipe(ByteSpan(expect));
  if (!ok) {
    secure_wipe(pt_out);
    return false;
  }
  return true;
}

}  // namespace ecqv::aead
