// A small event-driven CAN-FD bus for multi-node scenarios (examples and
// integration tests): frames serialize on the shared medium, every node
// except the sender receives each frame, and the bus clock advances by the
// modeled frame durations. Compute time can be charged by nodes through
// `advance_node_time`, so end-to-end latencies include both link and
// processing components (the structure of the paper's Fig. 7).
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "canfd/frame.hpp"

namespace ecqv::can {

class CanBus {
 public:
  explicit CanBus(BusTiming timing) : timing_(timing) {}

  using NodeId = std::size_t;
  /// Receive callback: frame plus the bus time at delivery (ms).
  using Handler = std::function<void(const CanFdFrame&, double now_ms)>;

  /// Attaches a node; returns its id.
  NodeId attach(Handler handler);

  /// Queues a frame for transmission. The frame starts when both the bus
  /// and the sender are free (the sender's local clock gates injection).
  void send(NodeId sender, const CanFdFrame& frame);

  /// Charges `ms` of compute time to a node's local clock (the node cannot
  /// inject frames earlier than its clock).
  void advance_node_time(NodeId node, double ms);

  /// A node's local clock, never behind the bus clock (deliveries drag
  /// every node forward). This is when the node could next inject a frame.
  [[nodiscard]] double node_time_ms(NodeId node) const;

  /// Per-frame timing tap, invoked as each frame serializes on the medium
  /// (before receive handlers run): sender, frame, when the frame became
  /// ready at the sender, actual transmission start (post-arbitration) and
  /// end. `start - ready` is the frame's arbitration/contention wait.
  using FrameObserver =
      std::function<void(NodeId sender, const CanFdFrame&, double ready_ms, double start_ms,
                         double end_ms)>;
  void set_frame_observer(FrameObserver observer) { observer_ = std::move(observer); }

  /// Delivers all queued frames in order; returns the final bus time.
  double run();

  [[nodiscard]] double now_ms() const { return now_ms_; }
  /// Total medium occupancy (sum of frame durations); now_ms() minus this
  /// is idle air time.
  [[nodiscard]] double busy_ms() const { return busy_ms_; }
  [[nodiscard]] std::size_t frames_delivered() const { return frames_delivered_; }

 private:
  struct Pending {
    NodeId sender;
    CanFdFrame frame;
    double ready_ms;  // sender-side readiness
  };

  BusTiming timing_;
  std::vector<Handler> handlers_;
  std::vector<double> node_clock_;
  std::vector<Pending> queue_;
  FrameObserver observer_;
  double now_ms_ = 0.0;
  double bus_free_ms_ = 0.0;
  double busy_ms_ = 0.0;
  std::size_t frames_delivered_ = 0;
};

}  // namespace ecqv::can
