#include "canfd/canfd_transport.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ecqv::can {

namespace {

/// Fabric payload header: src id || dst id ahead of the AppPdu.
constexpr std::size_t kFabricHeaderSize = 2 * cert::kDeviceIdSize;

}  // namespace

CanFdTransport::CanFdTransport(Config config)
    : config_(std::move(config)), bus_(config_.timing) {
  mutex_.enable(config_.concurrent);
  // The switch: one silent bus node that sees every frame exactly once
  // (it never transmits), reassembles per sender arbitration id, and
  // routes completed datagrams to the destination inbox — the acceptance
  // filtering a real controller does in hardware.
  // The bus only runs from flush(), which holds mutex_ — but the analysis
  // cannot follow the callback indirection, so each sink re-asserts the
  // capability at its boundary instead of the sink functions going
  // unchecked.
  bus_.attach([this](const CanFdFrame& frame, double now) {
    mutex_.assert_held();
    on_bus_frame(frame, now);
  });
  if (config_.recorder != nullptr) {
    bus_.set_frame_observer(
        [this](CanBus::NodeId, const CanFdFrame& frame, double ready, double start, double end) {
          mutex_.assert_held();
          on_frame_timed(frame, ready, start, end);
        });
  }
}

void CanFdTransport::attach(const cert::DeviceId& endpoint) {
  MutexLock lock(mutex_);
  if (by_id_.find(endpoint) != by_id_.end()) return;
  if (next_can_id_ > 0x7ff)
    throw std::length_error("CanFdTransport: 11-bit arbitration id space exhausted");
  auto node = std::make_unique<Node>();
  node->id = endpoint;
  node->can_id = next_can_id_++;
  node->bus_node = bus_.attach([](const CanFdFrame&, double) {
    // Endpoint nodes only transmit; reception is centralized in the switch.
  });
  node->txq = txq_.size();
  by_id_.emplace(endpoint, node.get());
  by_can_id_.emplace(node->can_id, node.get());
  nodes_.push_back(std::move(node));
  txq_.emplace_back();
}

Status CanFdTransport::send(const cert::DeviceId& src, const cert::DeviceId& dst,
                            const proto::Message& message) {
  MutexLock lock(mutex_);
  const auto src_it = by_id_.find(src);
  const auto dst_it = by_id_.find(dst);
  if (src_it == by_id_.end() || dst_it == by_id_.end()) return Error::kBadState;
  const Node& src_node = *src_it->second;
  const Node& dst_node = *dst_it->second;

  const std::uint64_t transfer = next_transfer_++;
  Bytes payload;
  payload.reserve(kFabricHeaderSize + kAppHeaderSize + message.payload.size());
  payload.insert(payload.end(), src.bytes.begin(), src.bytes.end());
  payload.insert(payload.end(), dst.bytes.begin(), dst.bytes.end());
  append(payload, wrap_fabric(message, static_cast<std::uint16_t>(transfer)).encode());
  if (payload.size() > kIsoTpMaxPayload) return Error::kBadLength;

  const auto frames = isotp_segment(src_node.can_id, payload);
  std::deque<OutFrame>& queue = txq_[src_node.txq];
  const std::size_t queued_before = queue.size();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    queue.push_back(OutFrame{src_node.bus_node, frames[i], transfer, false, src_node.bus_node});
    if (i == 0 && frames.size() > 1) {
      // Segmented transfer: the receiver answers the First Frame with a
      // Flow Control frame before the Consecutive Frames proceed.
      queue.push_back(OutFrame{dst_node.bus_node, flow_control_frame(dst_node.can_id), transfer,
                               true, src_node.bus_node});
    }
  }
  queued_frames_ += queue.size() - queued_before;
  ++stats_.messages_sent;
  stats_.payload_bytes += message.payload.size();
  return {};
}

void CanFdTransport::flush() {
  // Idle fast path: receive()/idle() call flush() per datagram pull, and a
  // fleet-sized endpoint list must not pay an O(endpoints) queue scan when
  // nothing is waiting.
  if (queued_frames_ == 0) return;
  // Equal-priority arbitration: one frame per competing sender per turn,
  // so concurrent multi-frame transfers genuinely interleave on the bus.
  // Each round is *served* (bus_.run()) before the next round merges:
  // deliveries advance the receiving nodes' clocks first, so a reactive
  // frame (the FC answering a First Frame, the CFs released by that FC)
  // is stamped ready at its causal trigger, not at the stale clock its
  // node had when the whole transfer was queued — the timeline's
  // per-frame waits then measure genuine bus contention only.
  std::unordered_set<std::uint64_t> cancelled;
  std::vector<CanBus::NodeId> timed_out_senders;
  bool pending = true;
  while (pending) {
    pending = false;
    for (auto& queue : txq_) {
      if (queue.empty()) continue;
      pending = true;
      OutFrame out = std::move(queue.front());
      queue.pop_front();
      if (cancelled.count(out.transfer) != 0) continue;
      if (config_.drop_frame && config_.drop_frame(out.frame)) {
        ++stats_.frames_dropped;
        if (config_.recorder != nullptr) {
          // Drops are decided at the flush boundary, before the bus run
          // serializes this round — the event is stamped with the clock
          // as of the previous run (documented approximation).
          TimelineEvent e;
          e.kind = TimelineEvent::Kind::kDrop;
          e.can_id = out.frame.id;
          e.queued_ms = e.start_ms = e.end_ms = bus_.now_ms();
          config_.recorder->record(std::move(e));
        }
        const std::uint8_t type = out.frame.data.empty() ? 0xff : out.frame.data[0] >> 4;
        if (out.flow_control) {
          // The sender's N_Bs timeout fires: without the FC it must not
          // push the Consecutive Frames. The transfer is lost; recovery
          // belongs to the layers above.
          ++stats_.fc_timeouts;
          cancelled.insert(out.transfer);
          timed_out_senders.push_back(out.data_node);
        } else if (type == 0x1) {
          // Lost First Frame: the receiver never answers with an FC, so
          // the sender times out and abandons the whole transfer.
          record_abort(out.frame.id, bus_.now_ms(), "lost-ff");
          cancelled.insert(out.transfer);
          timed_out_senders.push_back(out.data_node);
        }
        continue;
      }
      stats_.wire_bytes += out.frame.data.size();
      if (out.flow_control)
        ++stats_.flow_controls;
      else
        ++stats_.frames_sent;
      bus_.send(out.bus_node, out.frame);
    }
    bus_.run();
  }
  queued_frames_ = 0;
  // N_Bs charges land after the round serializes: the sender sat waiting
  // for an FC (or an FF acknowledgment) that never came, so its node
  // clock — and therefore its next injection — moves out by the timeout.
  for (const CanBus::NodeId node : timed_out_senders) {
    const double t0 = bus_.node_time_ms(node);
    bus_.advance_node_time(node, config_.fc_timeout_ms);
    if (config_.recorder != nullptr) {
      TimelineEvent e;
      e.kind = TimelineEvent::Kind::kFcTimeout;
      e.queued_ms = e.start_ms = t0;
      e.end_ms = t0 + config_.fc_timeout_ms;
      config_.recorder->record(std::move(e));
    }
  }
}

void CanFdTransport::on_frame_timed(const CanFdFrame& frame, double ready_ms, double start_ms,
                                    double end_ms) {
  const std::uint8_t pci_type = frame.data.empty() ? 0xff : frame.data[0] >> 4;
  TimelineEvent e;
  e.kind = pci_type == 0x3 ? TimelineEvent::Kind::kFlowControl : TimelineEvent::Kind::kFrame;
  e.can_id = frame.id;
  e.queued_ms = ready_ms;
  e.start_ms = start_ms;
  e.end_ms = end_ms;
  e.wire_bytes = frame.data.size();
  config_.recorder->record(std::move(e));
  if (pci_type == 0x3) return;
  // Transfer timing: a First/Single Frame opens (or preempts) the
  // sender's in-flight transfer; Consecutive Frames accumulate bytes.
  RxTiming& rx = rx_timing_[frame.id];
  if (pci_type == 0x0 || pci_type == 0x1) rx = RxTiming{ready_ms, start_ms, 0};
  rx.wire_bytes += frame.data.size();
}

void CanFdTransport::record_abort(std::uint32_t can_id, double now_ms, const char* label,
                                  std::size_t n) {
  stats_.aborted_transfers += n;
  if (config_.recorder == nullptr) return;
  TimelineEvent e;
  e.kind = TimelineEvent::Kind::kAbort;
  e.can_id = can_id;
  e.label = label;
  e.queued_ms = e.start_ms = e.end_ms = now_ms;
  config_.recorder->record(std::move(e));
}

void CanFdTransport::on_bus_frame(const CanFdFrame& frame, double now_ms) {
  const auto sender = by_can_id_.find(frame.id);
  if (sender == by_can_id_.end()) return;  // switch's own FCs carry dst ids too
  const std::uint8_t pci_type = frame.data.empty() ? 0xff : frame.data[0] >> 4;
  if (pci_type == 0x3) return;  // flow control: transparent to reassembly
  IsoTpReassembler& rx = reassembly_[frame.id];
  const bool was_in_progress = rx.in_progress();
  const std::size_t aborted_before = rx.aborted();
  auto fed = rx.feed(frame);
  // A transfer can die two ways: a feed error (sequence gap), or a fresh
  // FF/SF terminating a stale in-flight transfer on the ok path (ISO
  // 15765-2 preemption — e.g. after a lost final consecutive frame).
  if (rx.aborted() > aborted_before)
    record_abort(frame.id, now_ms, "reassembly", rx.aborted() - aborted_before);
  if (!fed.ok()) {
    // Orphan frames trailing an already-aborted transfer (consecutive
    // frames arriving with no transfer open) are strays, not new aborts.
    if (!was_in_progress) ++stats_.stray_frames;
    return;
  }
  if (!fed->has_value()) return;
  const Bytes& payload = **fed;
  if (payload.size() < kFabricHeaderSize + kAppHeaderSize) {
    record_abort(frame.id, now_ms, "short-payload");
    return;
  }
  cert::DeviceId src, dst;
  std::copy_n(payload.begin(), cert::kDeviceIdSize, src.bytes.begin());
  std::copy_n(payload.begin() + cert::kDeviceIdSize, cert::kDeviceIdSize, dst.bytes.begin());
  // The arbitration id is the link-layer sender: a header claiming another
  // source is malformed (or spoofed) and never reaches the session layer.
  if (!(sender->second->id == src)) {
    record_abort(frame.id, now_ms, "src-mismatch");
    return;
  }
  auto pdu = AppPdu::decode(ByteView(payload).subspan(kFabricHeaderSize));
  if (!pdu.ok()) {
    record_abort(frame.id, now_ms, "bad-pdu");
    return;
  }
  Result<proto::Message> message = Error::kDecodeFailed;
  try {
    message = unwrap_fabric(pdu.value());
  } catch (const std::invalid_argument&) {
    // step_for_op_code rejects op codes outside the fabric vocabulary.
  }
  if (!message.ok()) {
    record_abort(frame.id, now_ms, "bad-step");
    return;
  }
  const auto dst_it = by_id_.find(dst);
  if (dst_it == by_id_.end()) return;  // addressed to nobody we know
  if (config_.recorder != nullptr) {
    // One event per delivered fabric datagram: FF readiness through the
    // final frame's end — the interval sim/schedule renders as "tx:<step>".
    const auto timing = rx_timing_.find(frame.id);
    TimelineEvent e;
    e.kind = TimelineEvent::Kind::kDatagram;
    e.can_id = frame.id;
    e.src = src;
    e.dst = dst;
    e.label = message->step;
    e.queued_ms = timing != rx_timing_.end() ? timing->second.ready_ms : now_ms;
    e.start_ms = timing != rx_timing_.end() ? timing->second.start_ms : now_ms;
    e.end_ms = now_ms;
    e.wire_bytes = timing != rx_timing_.end() ? timing->second.wire_bytes : 0;
    config_.recorder->record(std::move(e));
  }
  dst_it->second->inbox.push_back(
      proto::Datagram{src, dst, std::move(message).value()});
  ++stats_.messages_delivered;
}

std::optional<proto::Datagram> CanFdTransport::receive(const cert::DeviceId& dst) {
  MutexLock lock(mutex_);
  flush();
  const auto it = by_id_.find(dst);
  if (it == by_id_.end() || it->second->inbox.empty()) return std::nullopt;
  proto::Datagram out = std::move(it->second->inbox.front());
  it->second->inbox.pop_front();
  return out;
}

bool CanFdTransport::idle() {
  MutexLock lock(mutex_);
  flush();
  for (const auto& node : nodes_)
    if (!node->inbox.empty()) return false;
  return true;
}

double CanFdTransport::bus_time_ms() {
  MutexLock lock(mutex_);
  flush();
  return bus_.now_ms();
}

double CanFdTransport::bus_busy_ms() {
  MutexLock lock(mutex_);
  flush();
  return bus_.busy_ms();
}

void CanFdTransport::charge(const cert::DeviceId& endpoint, double ms) {
  MutexLock lock(mutex_);
  flush();  // the charge starts after everything already on the bus
  const auto it = by_id_.find(endpoint);
  if (it == by_id_.end()) return;
  const double t0 = bus_.node_time_ms(it->second->bus_node);
  bus_.advance_node_time(it->second->bus_node, ms);
  if (config_.recorder != nullptr) {
    TimelineEvent e;
    e.kind = TimelineEvent::Kind::kCompute;
    e.can_id = it->second->can_id;
    e.src = endpoint;
    e.queued_ms = e.start_ms = t0;
    e.end_ms = t0 + ms;
    config_.recorder->record(std::move(e));
  }
}

double CanFdTransport::endpoint_time_ms(const cert::DeviceId& endpoint) {
  MutexLock lock(mutex_);
  flush();
  const auto it = by_id_.find(endpoint);
  if (it == by_id_.end()) return bus_.now_ms();
  return bus_.node_time_ms(it->second->bus_node);
}

}  // namespace ecqv::can
