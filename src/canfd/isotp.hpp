// ISO-TP (ISO 15765-2) transport over CAN-FD — the paper's "CAN-TP layer
// for message fragmentation" (Fig. 6, §V-C).
//
// Frame types (first PCI nibble): 0 = Single Frame, 1 = First Frame,
// 2 = Consecutive Frame, 3 = Flow Control. CAN-FD mapping:
//  * SF up to 7 bytes: 1-byte PCI (0x0L);
//  * SF up to 62 bytes: escape PCI (0x00, length);
//  * FF: 2-byte PCI (0x1h, ll) with 12-bit total length, then 62 data
//    bytes; receiver answers with FC (0x30, block size, STmin);
//  * CF: 1-byte PCI (0x2s) with 4-bit rolling sequence, 63 data bytes.
#pragma once

#include <optional>
#include <vector>

#include "canfd/frame.hpp"

namespace ecqv::can {

inline constexpr std::size_t kIsoTpMaxPayload = 4095;  // 12-bit FF length

/// Segments an application payload into ISO-TP frames (sender side).
/// Does not include the receiver's flow-control frame — see
/// `flow_control_frame`.
std::vector<CanFdFrame> isotp_segment(std::uint32_t can_id, ByteView payload);

/// The FC frame the receiver sends after a First Frame (ContinueToSend,
/// block size 0 = no further FCs, STmin 0).
CanFdFrame flow_control_frame(std::uint32_t can_id);

/// Number of frames (sender direction only) a payload needs.
std::size_t isotp_frame_count(std::size_t payload_size);

/// Streaming reassembler (receiver side).
class IsoTpReassembler {
 public:
  /// Feeds one frame. Returns the completed payload when the last frame
  /// arrives, std::nullopt while in progress. Errors reset the state.
  /// Per ISO 15765-2, a new First Frame (or Single Frame) arriving while a
  /// segmented transfer is still in flight *terminates* the old transfer
  /// and starts (or delivers) the new one — the recovery path after a lost
  /// final Consecutive Frame, counted in aborted().
  Result<std::optional<Bytes>> feed(const CanFdFrame& frame);

  /// True while a segmented transfer is in flight.
  [[nodiscard]] bool in_progress() const { return expected_ > 0; }

  /// Transfers abandoned: sequence errors plus in-flight transfers
  /// terminated by a fresh FF/SF.
  [[nodiscard]] std::size_t aborted() const { return aborted_; }

 private:
  Bytes buffer_;
  std::size_t expected_ = 0;
  std::uint8_t next_seq_ = 0;
  std::size_t aborted_ = 0;
};

}  // namespace ecqv::can
