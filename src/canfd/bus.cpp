#include "canfd/bus.hpp"

#include <algorithm>

namespace ecqv::can {

CanBus::NodeId CanBus::attach(Handler handler) {
  handlers_.push_back(std::move(handler));
  node_clock_.push_back(0.0);
  return handlers_.size() - 1;
}

void CanBus::send(NodeId sender, const CanFdFrame& frame) {
  queue_.push_back(Pending{sender, frame, node_clock_.at(sender)});
}

void CanBus::advance_node_time(NodeId node, double ms) {
  node_clock_.at(node) = std::max(node_clock_.at(node), now_ms_) + ms;
}

double CanBus::node_time_ms(NodeId node) const {
  return std::max(node_clock_.at(node), now_ms_);
}

double CanBus::run() {
  // Frames go out in FIFO order per CAN arbitration at equal priority;
  // handlers may enqueue replies, so iterate until drained.
  std::size_t head = 0;
  while (head < queue_.size()) {
    const Pending pending = queue_[head++];
    const double start = std::max({bus_free_ms_, pending.ready_ms, now_ms_});
    const double duration = frame_duration_ms(pending.frame, timing_);
    now_ms_ = start + duration;
    bus_free_ms_ = now_ms_;
    busy_ms_ += duration;
    ++frames_delivered_;
    if (observer_) observer_(pending.sender, pending.frame, pending.ready_ms, start, now_ms_);
    for (std::size_t node = 0; node < handlers_.size(); ++node) {
      if (node == pending.sender) continue;
      node_clock_[node] = std::max(node_clock_[node], now_ms_);
      handlers_[node](pending.frame, now_ms_);
    }
  }
  queue_.clear();
  return now_ms_;
}

}  // namespace ecqv::can
