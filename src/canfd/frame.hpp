// CAN-FD data link layer model (paper Fig. 6, bottom row; §V-C: nominal
// phase 0.5 Mbit/s, data phase 2 Mbit/s).
//
// The timing model counts bits per phase:
//  * nominal (arbitration) phase: SOF, 11-bit identifier, control bits up
//    to the BRS switch, plus the post-CRC tail (ACK slot, delimiters, EOF,
//    inter-frame space);
//  * data phase: remaining control bits, DLC, data bytes, stuff count and
//    CRC (17 bits for <=16 data bytes, 21 above).
// Dynamic stuff bits depend on payload content; we add the expected-case
// 1-in-10 estimate to the data phase (documented approximation; the paper
// itself reports the physical link time as negligible, <1 ms per §V-C).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace ecqv::can {

inline constexpr std::size_t kMaxDataBytes = 64;

/// Valid CAN-FD payload lengths and the DLC quantization.
std::size_t dlc_round_up(std::size_t len);   // next valid payload size
std::uint8_t dlc_code(std::size_t len);      // 4-bit DLC for a valid size
std::size_t dlc_size(std::uint8_t code);     // inverse

struct CanFdFrame {
  std::uint32_t id = 0;  // 11-bit standard identifier
  Bytes data;            // padded to a valid DLC size by the sender

  /// Builds a frame, padding `payload` with zeros up to the DLC boundary.
  static CanFdFrame make(std::uint32_t id, ByteView payload);
};

/// How stuff bits enter the frame-duration model.
enum class StuffModel : std::uint8_t {
  kNone,      // raw field bits only (lower bound)
  kEstimate,  // flat 1-in-10 expected-case estimate (seed behavior)
  kExact,     // serialize the frame and count the real stuff bits + CRC
              // field per ISO 11898-1 (canfd/bitstream) — payload-dependent
};

struct BusTiming {
  double nominal_bitrate = 500'000.0;   // paper §V-C
  double data_bitrate = 2'000'000.0;
  StuffModel stuffing = StuffModel::kEstimate;
};

/// Bits transmitted in each phase for a frame with `data_len` bytes
/// (data_len must be a valid DLC size).
struct FrameBits {
  std::size_t nominal = 0;
  std::size_t data = 0;
};
FrameBits frame_bits(std::size_t data_len, bool include_stuff_estimate = true);

/// Wall-clock duration of one frame on the bus, in milliseconds. The frame
/// overload honors StuffModel::kExact (it has the payload bytes to
/// serialize); the length-only overload degrades kExact to the estimate.
double frame_duration_ms(const CanFdFrame& frame, const BusTiming& timing);
double frame_duration_ms(std::size_t data_len, const BusTiming& timing);

}  // namespace ecqv::can
