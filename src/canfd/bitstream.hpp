// Bit-level CAN-FD frame model: exact dynamic stuff-bit counting and frame
// CRC computation over the serialized bitstream.
//
// The coarse model in frame.hpp adds a flat 10% stuffing estimate; this
// module serializes the actual frame fields and applies the real rules of
// ISO 11898-1:2015:
//  * dynamic stuffing (insert a complement after five equal bits) from SOF
//    through the end of the data field;
//  * the CRC field uses *fixed* stuff bits instead: one before the 4-bit
//    stuff count and one after every 4 CRC bits;
//  * CRC-17 for frames with up to 16 data bytes, CRC-21 above (polynomial
//    constants per ISO 11898-1; no public KATs exist, so tests validate
//    structural invariants: error detection, length monotonicity, stuffing
//    bounds).
//
// The payload-dependent result feeds the timing model when
// BusTiming::stuffing == StuffModel::kExact.
#pragma once

#include <cstdint>
#include <vector>

#include "canfd/frame.hpp"

namespace ecqv::can {

/// A growable bit sequence (MSB-first order of emission).
class BitWriter {
 public:
  void push(bool bit) { bits_.push_back(bit); }
  void push_bits(std::uint32_t value, unsigned count);  // MSB first
  [[nodiscard]] const std::vector<bool>& bits() const { return bits_; }
  [[nodiscard]] std::size_t size() const { return bits_.size(); }

 private:
  std::vector<bool> bits_;
};

/// CRC over a bit sequence with a given polynomial (MSB-first shift
/// register, initial value 0, as used by CAN).
std::uint32_t crc_bits(const std::vector<bool>& bits, std::uint32_t polynomial,
                       unsigned crc_width);

/// ISO 11898-1 CAN FD CRC polynomials (17/21 bit).
inline constexpr std::uint32_t kCrc17Poly = 0x1685B;   // x^17+... (17-bit field)
inline constexpr std::uint32_t kCrc21Poly = 0x102899;  // x^21+... (21-bit field)

/// Number of dynamic stuff bits the 5-in-a-row rule inserts into `bits`.
std::size_t count_dynamic_stuff_bits(const std::vector<bool>& bits);

/// Exact serialized bit budget of one frame.
struct ExactFrameBits {
  std::size_t nominal = 0;        // arbitration-phase bits (incl. their stuffing)
  std::size_t data = 0;           // data-phase bits (incl. stuffing + CRC field)
  std::size_t dynamic_stuff = 0;  // informational: inserted stuff bits
  std::uint32_t crc = 0;          // the computed CRC value
};
ExactFrameBits exact_frame_bits(const CanFdFrame& frame);

/// Frame duration using the exact bit counts.
double exact_frame_duration_ms(const CanFdFrame& frame, const BusTiming& timing);

}  // namespace ecqv::can
