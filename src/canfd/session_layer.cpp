#include "canfd/session_layer.hpp"

#include <stdexcept>

namespace ecqv::can {

Bytes AppPdu::encode() const {
  Bytes out;
  out.reserve(kAppHeaderSize + data.size());
  out.push_back(static_cast<std::uint8_t>(comm_code));
  out.push_back(static_cast<std::uint8_t>(session_id >> 8));
  out.push_back(static_cast<std::uint8_t>(session_id));
  out.push_back(op_code);
  append(out, data);
  return out;
}

Result<AppPdu> AppPdu::decode(ByteView bytes) {
  if (bytes.size() < kAppHeaderSize) return Error::kBadLength;
  AppPdu pdu;
  switch (bytes[0]) {
    case 0x10: pdu.comm_code = CommCode::kKeyDerivation; break;
    case 0x20: pdu.comm_code = CommCode::kSessionData; break;
    case 0x30: pdu.comm_code = CommCode::kEnrollment; break;
    default: return Error::kDecodeFailed;
  }
  pdu.session_id = static_cast<std::uint16_t>((bytes[1] << 8) | bytes[2]);
  pdu.op_code = bytes[3];
  pdu.data = Bytes(bytes.begin() + kAppHeaderSize, bytes.end());
  return pdu;
}

std::uint8_t op_code_for_step(const std::string& step) {
  // Steps are "<role><index>": A1=0x01, A2=0x02, ..., B1=0x11, ...
  if (step.size() != 2 || (step[0] != 'A' && step[0] != 'B') || step[1] < '1' || step[1] > '9')
    throw std::invalid_argument("op_code_for_step: bad step label: " + step);
  const std::uint8_t role_bits = step[0] == 'A' ? 0x00 : 0x10;
  return static_cast<std::uint8_t>(role_bits | (step[1] - '0'));
}

std::string step_for_op_code(std::uint8_t op) {
  const char role = (op & 0x10) != 0 ? 'B' : 'A';
  const auto index = static_cast<char>('0' + (op & 0x0f));
  if (index < '1' || index > '9') throw std::invalid_argument("step_for_op_code: bad op code");
  return std::string{role, index};
}

AppPdu wrap_message(const proto::Message& message, std::uint16_t session_id) {
  AppPdu pdu;
  pdu.comm_code = CommCode::kKeyDerivation;
  pdu.session_id = session_id;
  pdu.op_code = op_code_for_step(message.step);
  pdu.data = message.payload;
  return pdu;
}

Result<proto::Message> unwrap_message(const AppPdu& pdu) {
  if (pdu.comm_code != CommCode::kKeyDerivation) return Error::kDecodeFailed;
  proto::Message message;
  message.step = step_for_op_code(pdu.op_code);
  message.sender = message.step[0] == 'A' ? proto::Role::kInitiator : proto::Role::kResponder;
  message.payload = pdu.data;
  return message;
}

AppPdu wrap_fabric(const proto::Message& message, std::uint16_t session_id) {
  if (message.step != proto::kRatchetStepLabel && message.step != proto::kDataStepLabel &&
      message.step != proto::kRatchetAckStepLabel)
    return wrap_message(message, session_id);
  AppPdu pdu;
  pdu.comm_code = CommCode::kSessionData;
  pdu.session_id = session_id;
  pdu.op_code = message.step == proto::kRatchetStepLabel    ? kOpRatchet
                : message.step == proto::kRatchetAckStepLabel ? kOpRatchetAck
                                                              : kOpDataRecord;
  if (message.sender == proto::Role::kResponder) pdu.op_code |= kOpResponderBit;
  pdu.data = message.payload;
  return pdu;
}

Result<proto::Message> unwrap_fabric(const AppPdu& pdu) {
  if (pdu.comm_code == CommCode::kKeyDerivation) return unwrap_message(pdu);
  if (pdu.comm_code != CommCode::kSessionData) return Error::kDecodeFailed;
  proto::Message message;
  message.sender = (pdu.op_code & kOpResponderBit) != 0 ? proto::Role::kResponder
                                                        : proto::Role::kInitiator;
  switch (pdu.op_code & static_cast<std::uint8_t>(~kOpResponderBit)) {
    case kOpRatchet: message.step = std::string(proto::kRatchetStepLabel); break;
    case kOpDataRecord: message.step = std::string(proto::kDataStepLabel); break;
    case kOpRatchetAck: message.step = std::string(proto::kRatchetAckStepLabel); break;
    default: return Error::kDecodeFailed;
  }
  message.payload = pdu.data;
  return message;
}

}  // namespace ecqv::can
