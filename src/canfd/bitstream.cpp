#include "canfd/bitstream.hpp"

namespace ecqv::can {

void BitWriter::push_bits(std::uint32_t value, unsigned count) {
  for (unsigned i = count; i-- > 0;) push(((value >> i) & 1u) != 0);
}

std::uint32_t crc_bits(const std::vector<bool>& bits, std::uint32_t polynomial,
                       unsigned crc_width) {
  // Classic LFSR: shift in one message bit at a time, XOR the polynomial
  // when the bit leaving the register differs from the incoming bit.
  std::uint32_t reg = 0;
  const std::uint32_t top = 1u << (crc_width - 1);
  const std::uint32_t mask = (crc_width == 32) ? 0xffffffffu : ((1u << crc_width) - 1);
  for (const bool bit : bits) {
    const bool do_xor = (((reg & top) != 0) != bit);
    reg = (reg << 1) & mask;
    if (do_xor) reg ^= polynomial & mask;
  }
  return reg;
}

std::size_t count_dynamic_stuff_bits(const std::vector<bool>& bits) {
  std::size_t stuffed = 0;
  std::size_t run = 0;
  bool last = false;
  bool have_last = false;
  for (const bool bit : bits) {
    if (have_last && bit == last) {
      ++run;
    } else {
      run = 1;
      last = bit;
      have_last = true;
    }
    if (run == 5) {
      // A complement bit is inserted on the wire; it starts a new run.
      ++stuffed;
      run = 1;
      last = !last;
    }
  }
  return stuffed;
}

ExactFrameBits exact_frame_bits(const CanFdFrame& frame) {
  // Serialize the dynamically-stuffed region: SOF, 11-bit ID, RRS, IDE,
  // FDF, res, BRS | ESI, DLC, data. The bit-rate switch happens at BRS;
  // everything before (7 + 11 = 18 bits) is nominal phase.
  BitWriter pre_crc;
  pre_crc.push(false);                                     // SOF (dominant)
  pre_crc.push_bits(frame.id & 0x7ff, 11);                 // identifier
  pre_crc.push(false);                                     // RRS
  pre_crc.push(false);                                     // IDE (base format)
  pre_crc.push(true);                                      // FDF (CAN FD)
  pre_crc.push(false);                                     // res
  pre_crc.push(true);                                      // BRS (switch rate)
  constexpr std::size_t kNominalPrefixBits = 18;           // SOF..BRS
  pre_crc.push(false);                                     // ESI (active)
  pre_crc.push_bits(dlc_code(frame.data.size()), 4);       // DLC
  for (const std::uint8_t byte : frame.data) pre_crc.push_bits(byte, 8);

  const bool long_crc = frame.data.size() > 16;
  const unsigned crc_width = long_crc ? 21 : 17;
  const std::uint32_t polynomial = long_crc ? kCrc21Poly : kCrc17Poly;
  const std::uint32_t crc = crc_bits(pre_crc.bits(), polynomial, crc_width);

  const std::size_t dynamic_stuff = count_dynamic_stuff_bits(pre_crc.bits());

  // Stuffing splits between the phases. Count stuff bits landing in the
  // nominal prefix by re-running the counter on the prefix alone (stuff
  // insertion is causal, so the prefix count is exact).
  std::vector<bool> prefix(pre_crc.bits().begin(),
                           pre_crc.bits().begin() + kNominalPrefixBits);
  const std::size_t prefix_stuff = count_dynamic_stuff_bits(prefix);

  // CRC field (data phase): stuff count (4 bits incl. parity per spec,
  // modeled as 4) with one fixed stuff bit before it, then the CRC bits
  // with a fixed stuff bit after every 4.
  const std::size_t crc_field_bits = 1 + 4 + crc_width + crc_width / 4;
  // Tail at nominal rate: CRC delimiter, ACK, ACK delimiter, EOF(7), IFS(3).
  constexpr std::size_t kTailBits = 1 + 1 + 1 + 7 + 3;

  ExactFrameBits out;
  out.crc = crc;
  out.dynamic_stuff = dynamic_stuff;
  out.nominal = kNominalPrefixBits + prefix_stuff + kTailBits;
  out.data = (pre_crc.size() - kNominalPrefixBits) + (dynamic_stuff - prefix_stuff) +
             crc_field_bits;
  return out;
}

double exact_frame_duration_ms(const CanFdFrame& frame, const BusTiming& timing) {
  const ExactFrameBits bits = exact_frame_bits(frame);
  const double seconds = static_cast<double>(bits.nominal) / timing.nominal_bitrate +
                         static_cast<double>(bits.data) / timing.data_bitrate;
  return seconds * 1e3;
}

}  // namespace ecqv::can
