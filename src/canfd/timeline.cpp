#include "canfd/timeline.hpp"

#include <algorithm>

namespace ecqv::can {

void TimelineRecorder::record(TimelineEvent event) {
  StdMutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

void TimelineRecorder::clear() {
  StdMutexLock lock(mutex_);
  events_.clear();
}

std::vector<TimelineEvent> TimelineRecorder::events() const {
  StdMutexLock lock(mutex_);
  return events_;
}

TimelineRecorder::Summary TimelineRecorder::summary() const {
  StdMutexLock lock(mutex_);
  Summary out;
  for (const TimelineEvent& e : events_) {
    out.end_ms = std::max(out.end_ms, e.end_ms);
    switch (e.kind) {
      case TimelineEvent::Kind::kFrame:
      case TimelineEvent::Kind::kFlowControl:
        ++out.frames;
        out.bus_busy_ms += e.duration_ms();
        out.contention_wait_ms += e.wait_ms();
        out.max_wait_ms = std::max(out.max_wait_ms, e.wait_ms());
        out.wire_bytes += e.wire_bytes;
        break;
      case TimelineEvent::Kind::kDatagram: ++out.datagrams; break;
      case TimelineEvent::Kind::kDrop: ++out.drops; break;
      case TimelineEvent::Kind::kFcTimeout: ++out.fc_timeouts; break;
      case TimelineEvent::Kind::kCompute: break;
      case TimelineEvent::Kind::kAbort: ++out.aborts; break;
      case TimelineEvent::Kind::kFault: ++out.faults; break;
    }
  }
  return out;
}

}  // namespace ecqv::can
