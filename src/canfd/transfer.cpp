#include "canfd/transfer.hpp"

#include "canfd/isotp.hpp"
#include "canfd/session_layer.hpp"

namespace ecqv::can {

TransferBreakdown message_transfer(const proto::Message& message, const BusTiming& timing) {
  const AppPdu pdu = wrap_message(message, /*session_id=*/1);
  const Bytes app = pdu.encode();
  const std::vector<CanFdFrame> frames = isotp_segment(/*can_id=*/0x123, app);

  TransferBreakdown breakdown;
  breakdown.app_bytes = app.size();
  breakdown.frame_count = frames.size();
  for (const auto& frame : frames) breakdown.duration_ms += frame_duration_ms(frame, timing);
  if (frames.size() > 1) {
    breakdown.flow_control = true;
    breakdown.duration_ms += frame_duration_ms(flow_control_frame(0x124), timing);
  }
  return breakdown;
}

double message_transfer_ms(const proto::Message& message, const BusTiming& timing) {
  return message_transfer(message, timing).duration_ms;
}

}  // namespace ecqv::can
