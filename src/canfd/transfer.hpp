// On-wire cost of one protocol message over the full Fig. 6 stack:
// application header + ISO-TP segmentation + per-frame CAN-FD timing,
// including the receiver's flow-control frame for segmented transfers.
#pragma once

#include "canfd/frame.hpp"
#include "core/message.hpp"

namespace ecqv::can {

struct TransferBreakdown {
  std::size_t app_bytes = 0;     // header + payload
  std::size_t frame_count = 0;   // sender frames
  bool flow_control = false;     // receiver FC frame present
  double duration_ms = 0.0;      // total bus occupancy
};

TransferBreakdown message_transfer(const proto::Message& message, const BusTiming& timing);

/// Adapter with the sim::TransferTime signature (ms per message).
double message_transfer_ms(const proto::Message& message, const BusTiming& timing);

}  // namespace ecqv::can
