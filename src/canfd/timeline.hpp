// Virtual-clock timeline of the simulated CAN-FD fabric.
//
// The bus model (bus.cpp) already advances a simulated clock through
// round-robin arbitration, frame serialization and per-node compute
// charges; this module makes that clock *observable*: the transport emits
// one TimelineEvent per frame, per flow-control round, per completed
// fabric datagram, per loss-model casualty (dropped frame, N_Bs timeout)
// and per compute charge, into a recorder that sim/schedule consumes
// alongside its analytic compute-cost entries. Fig. 7 reproductions and
// the fleet contention benches read the same stream, so "time on the bus"
// has exactly one definition across the repo.
//
// Event semantics:
//   * queued_ms  — when the payload became ready at its sender (frame
//     events: the sender's node clock at injection; datagram events: the
//     First/Single Frame's readiness);
//   * start_ms   — when the bus actually started serializing it
//     (post-arbitration; start - queued is the contention wait);
//   * end_ms     — end of serialization (datagram events: delivery of the
//     final frame, i.e. when the reassembled message reached its inbox).
//
// Thread safety: record() and every accessor lock one internal mutex —
// the recorder is shared by transport internals and (in concurrent
// fabrics) worker threads charging compute.
#pragma once

#include <string>
#include <vector>

#include "common/sync.hpp"
#include "ecqv/certificate.hpp"

namespace ecqv::can {

struct TimelineEvent {
  enum class Kind : std::uint8_t {
    kFrame,        // one data-bearing frame's bus occupancy
    kFlowControl,  // receiver FC frame occupancy
    kDatagram,     // complete fabric datagram (FF ready .. last frame end)
    kFcTimeout,    // sender's N_Bs expiry after a lost FC / lost FF
    kDrop,         // frame/datagram killed by a loss model (zero duration)
    kCompute,      // device compute charged to a node clock
    kAbort,        // reassembly abandoned a partial transfer (loss, gaps)
    kFault,        // injected non-drop fault (duplicate/reorder/delay/
                   // corrupt) — label names the fault kind
  };

  Kind kind = Kind::kFrame;
  std::uint32_t can_id = 0;     // sender arbitration id (frame/datagram kinds)
  cert::DeviceId src;           // datagram + compute events
  cert::DeviceId dst;           // datagram events
  std::string label;            // datagram: protocol step; compute: segment
  double queued_ms = 0.0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::size_t wire_bytes = 0;   // DLC-padded bytes (frame/datagram kinds)

  [[nodiscard]] double duration_ms() const { return end_ms - start_ms; }
  /// Arbitration/contention wait before serialization began.
  [[nodiscard]] double wait_ms() const { return start_ms - queued_ms; }
};

/// Collects TimelineEvents from one transport (or several sharing a bus)
/// and aggregates the numbers the contention benches report.
class TimelineRecorder {
 public:
  void record(TimelineEvent event);
  void clear();

  /// Snapshot of everything recorded so far, in emission order (frame
  /// events are emitted in bus-serialization order).
  [[nodiscard]] std::vector<TimelineEvent> events() const;

  struct Summary {
    std::size_t frames = 0;          // kFrame + kFlowControl events
    std::size_t datagrams = 0;
    std::size_t drops = 0;
    std::size_t fc_timeouts = 0;
    std::size_t aborts = 0;          // kAbort: abandoned partial transfers
    std::size_t faults = 0;          // kFault: injected non-drop faults
    double bus_busy_ms = 0.0;        // sum of frame occupancy
    double contention_wait_ms = 0.0; // sum of frame waits (start - queued)
    double max_wait_ms = 0.0;        // worst single frame wait
    double end_ms = 0.0;             // latest event end (timeline horizon)
    std::size_t wire_bytes = 0;      // DLC-padded bytes over all frames
  };
  [[nodiscard]] Summary summary() const;

 private:
  mutable Mutex mutex_;
  std::vector<TimelineEvent> events_ GUARDED_BY(mutex_);
};

}  // namespace ecqv::can
