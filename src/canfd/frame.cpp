#include "canfd/frame.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "canfd/bitstream.hpp"

namespace ecqv::can {

namespace {
constexpr std::array<std::size_t, 16> kDlcSizes = {0, 1, 2,  3,  4,  5,  6,  7,
                                                   8, 12, 16, 20, 24, 32, 48, 64};
}  // namespace

std::size_t dlc_round_up(std::size_t len) {
  for (const std::size_t size : kDlcSizes)
    if (size >= len) return size;
  throw std::invalid_argument("dlc_round_up: exceeds 64 bytes");
}

std::uint8_t dlc_code(std::size_t len) {
  for (std::size_t i = 0; i < kDlcSizes.size(); ++i)
    if (kDlcSizes[i] == len) return static_cast<std::uint8_t>(i);
  throw std::invalid_argument("dlc_code: not a valid CAN-FD payload size");
}

std::size_t dlc_size(std::uint8_t code) {
  if (code >= kDlcSizes.size()) throw std::invalid_argument("dlc_size: bad code");
  return kDlcSizes[code];
}

CanFdFrame CanFdFrame::make(std::uint32_t id, ByteView payload) {
  if (payload.size() > kMaxDataBytes) throw std::invalid_argument("CanFdFrame: payload > 64");
  if (id > 0x7ff) throw std::invalid_argument("CanFdFrame: standard id exceeds 11 bits");
  CanFdFrame frame;
  frame.id = id;
  frame.data.assign(payload.begin(), payload.end());
  frame.data.resize(dlc_round_up(payload.size()), 0x00);
  return frame;
}

FrameBits frame_bits(std::size_t data_len, bool include_stuff_estimate) {
  // Nominal phase: SOF(1) + ID(11) + RRS(1) + IDE(1) + FDF(1) + res(1) +
  // BRS(1) = 17 bits before the rate switch, plus the tail after the CRC
  // delimiter: ACK(1) + ACK-delim(1) + EOF(7) + IFS(3) = 12 bits.
  // Data phase: ESI(1) + DLC(4) + data(8n) + stuff-count(4) + CRC(17|21) +
  // CRC-delim(1).
  FrameBits bits;
  bits.nominal = 17 + 12;
  const std::size_t crc = data_len <= 16 ? 17 : 21;
  bits.data = 1 + 4 + 8 * data_len + 4 + crc + 1;
  if (include_stuff_estimate) {
    bits.nominal += bits.nominal / 10;
    bits.data += bits.data / 10;
  }
  return bits;
}

double frame_duration_ms(std::size_t data_len, const BusTiming& timing) {
  const FrameBits bits = frame_bits(data_len, timing.stuffing != StuffModel::kNone);
  const double seconds = static_cast<double>(bits.nominal) / timing.nominal_bitrate +
                         static_cast<double>(bits.data) / timing.data_bitrate;
  return seconds * 1e3;
}

double frame_duration_ms(const CanFdFrame& frame, const BusTiming& timing) {
  if (timing.stuffing == StuffModel::kExact) return exact_frame_duration_ms(frame, timing);
  return frame_duration_ms(frame.data.size(), timing);
}

}  // namespace ecqv::can
