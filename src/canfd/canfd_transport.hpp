// CAN-FD fabric transport: proto::Transport over the full Fig. 6 stack.
//
// Every fabric datagram is framed as
//
//   src id (16) || dst id (16) || AppPdu (comm code, session id, op code, data)
//
// then segmented by ISO-TP into CAN-FD frames on one shared simulated bus.
// Addressing follows ISO-TP normal addressing with a session-layer
// extension: the 11-bit arbitration id identifies the *sender* (assigned
// at attach), so concurrent transfers from different peers demultiplex by
// arbitration id — exactly how interleaved multi-peer ISO-TP coexists on a
// real bus — while the destination rides in the payload header and is
// filtered at the session layer (the paper's session comm id row).
//
// Arbitration realism: competing senders' pending frames are merged onto
// the bus round-robin, one frame per sender per turn (equal-priority
// arbitration), so a 5-frame B1 from one peer genuinely interleaves with
// another peer's transfer. After a First Frame the receiver's Flow Control
// frame is scheduled from the receiver's node, charging the FC round to
// the bus exactly as transfer.cpp's per-message model does. (The sender
// does not stall waiting for the FC — BS=0/STmin=0, the same documented
// approximation the rest of src/canfd uses.)
//
// Loss model: `drop_frame` (a test hook standing in for bus errors) kills
// individual frames before they reach the bus. A dropped Flow Control
// aborts the remaining Consecutive Frames of its transfer — the sender's
// FC timeout (N_Bs) — counted in stats().fc_timeouts; a dropped FF/CF
// surfaces as an aborted reassembly (stats().aborted_transfers, with a
// kAbort timeline event). Message loss is silent to send(), as on the real
// bus: recovery belongs to the layers above — since PR 6 that is the
// broker's reliability engine (core/session_broker.hpp ReliabilityConfig:
// retransmission timers on this bus clock, duplicate suppression, abort/
// rekey escalation), with the pending-handshake TTL as the backstop. For
// datagram-level fault injection (drop/duplicate/reorder/delay/corrupt)
// wrap this transport in proto::FaultyTransport; frame-level Bernoulli
// loss plugs in via FaultyTransport::frame_drop_plan as `drop_frame`.
//
// Thread safety: all public calls serialize on one internal mutex when
// constructed with Config::concurrent — the bus simulation is inherently
// a shared medium, so coarse locking *is* the faithful model.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "canfd/bus.hpp"
#include "canfd/isotp.hpp"
#include "canfd/session_layer.hpp"
#include "canfd/timeline.hpp"
#include "core/transport.hpp"

namespace ecqv::can {

class CanFdTransport final : public proto::Transport {
 public:
  struct Config {
    BusTiming timing{};
    bool concurrent = false;
    /// Test hook simulating bus errors: return true to drop this frame.
    std::function<bool(const CanFdFrame&)> drop_frame;
    /// Virtual-clock tap (not owned; must outlive the transport): every
    /// frame, flow-control round, completed datagram, drop and N_Bs
    /// timeout is recorded with its bus-time interval. Null = no events.
    TimelineRecorder* recorder = nullptr;
    /// Sender-side N_Bs: how long (simulated ms) a sender waits for the
    /// Flow Control after a First Frame before abandoning the transfer.
    /// Charged to the sender's node clock when the loss model kills the
    /// FC (or the FF itself), so lossy timelines stall realistically.
    /// ISO 15765-2 allows up to 1000 ms; embedded stacks typically run
    /// much tighter budgets.
    double fc_timeout_ms = 100.0;
  };

  struct Stats {
    StatCounter messages_sent = 0;
    StatCounter messages_delivered = 0;
    StatCounter frames_sent = 0;       // data-bearing frames put on the bus
    StatCounter flow_controls = 0;     // FC frames scheduled by receivers
    StatCounter frames_dropped = 0;    // killed by the loss hook
    StatCounter fc_timeouts = 0;       // transfers aborted by a lost FC
    StatCounter aborted_transfers = 0; // reassembly failures (loss, gaps)
    StatCounter stray_frames = 0;      // orphan CFs trailing an aborted transfer
    StatCounter wire_bytes = 0;        // DLC-padded bytes on the bus
    StatCounter payload_bytes = 0;     // application Message payload bytes
  };

  CanFdTransport() : CanFdTransport(Config{}) {}
  explicit CanFdTransport(Config config);

  void attach(const cert::DeviceId& endpoint) override;
  Status send(const cert::DeviceId& src, const cert::DeviceId& dst,
              const proto::Message& message) override;
  std::optional<proto::Datagram> receive(const cert::DeviceId& dst) override;
  [[nodiscard]] bool idle() override;

  /// Simulated bus clock (ms) after everything queued so far has been
  /// arbitrated and delivered.
  [[nodiscard]] double bus_time_ms();

  /// Total medium occupancy (ms): bus_time_ms() minus idle air time. The
  /// recorder's Summary::bus_busy_ms sums the same quantity from frame
  /// events — test_timeline.cpp pins the two definitions together.
  [[nodiscard]] double bus_busy_ms();

  // Virtual-time hooks (proto::Transport): the bus clock IS the link
  // clock, compute charges gate the endpoint's next injection, and the
  // endpoint clock is CanBus::node_time_ms — so sim/schedule timelines
  // built over this transport are bus-time faithful.
  [[nodiscard]] double now_ms() override { return bus_time_ms(); }
  void charge(const cert::DeviceId& endpoint, double ms) override;
  [[nodiscard]] double endpoint_time_ms(const cert::DeviceId& endpoint) override;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t frames_delivered() const { return bus_.frames_delivered(); }

 private:
  struct Node {
    cert::DeviceId id;
    CanBus::NodeId bus_node = 0;
    std::size_t txq = 0;  // index into txq_
    std::uint32_t can_id = 0;
    std::deque<proto::Datagram> inbox;
  };
  struct OutFrame {
    CanBus::NodeId bus_node = 0;
    CanFdFrame frame;
    std::uint64_t transfer = 0;  // serial of the transfer this frame belongs to
    bool flow_control = false;
    CanBus::NodeId data_node = 0;  // the transfer's data sender (N_Bs charges)
  };
  /// First-frame timing of the transfer currently reassembling for one
  /// sender arbitration id (feeds the per-datagram timeline event).
  struct RxTiming {
    double ready_ms = 0.0;
    double start_ms = 0.0;
    std::size_t wire_bytes = 0;  // DLC-padded bytes of the transfer so far
  };

  /// Merges every sender's pending frames onto the bus round-robin (one
  /// frame per sender per turn) and runs the bus until drained. Lock held.
  void flush() REQUIRES(mutex_);
  /// Switch-side frame sink (runs inside bus_.run() from flush — the lock
  /// is held across the run, re-asserted at the lambda boundary because the
  /// analysis cannot follow the bus's callback indirection).
  void on_bus_frame(const CanFdFrame& frame, double now_ms) REQUIRES(mutex_);
  /// Bus frame-timing tap (runs inside bus_.run(); recorder configured).
  void on_frame_timed(const CanFdFrame& frame, double ready_ms, double start_ms, double end_ms)
      REQUIRES(mutex_);
  /// Counts one abandoned transfer and emits its kAbort timeline event
  /// (`label` names the failure: gap, short payload, bad header, ...).
  void record_abort(std::uint32_t can_id, double now_ms, const char* label, std::size_t n = 1)
      REQUIRES(mutex_);

  Config config_;
  // The bus itself is only driven under the lock (flush and its callbacks),
  // but stays unguarded: frames_delivered() reads a monotone counter for
  // test assertions after the fabric quiesces.
  CanBus bus_;
  OptionalMutex mutex_;
  std::vector<std::unique_ptr<Node>> nodes_ GUARDED_BY(mutex_);
  std::unordered_map<cert::DeviceId, Node*, proto::DeviceIdHash> by_id_ GUARDED_BY(mutex_);
  std::unordered_map<std::uint32_t, Node*> by_can_id_ GUARDED_BY(mutex_);
  std::unordered_map<std::uint32_t, IsoTpReassembler> reassembly_
      GUARDED_BY(mutex_);  // keyed by sender can id
  std::unordered_map<std::uint32_t, RxTiming> rx_timing_
      GUARDED_BY(mutex_);  // keyed by sender can id
  std::vector<std::deque<OutFrame>> txq_
      GUARDED_BY(mutex_);  // per attached endpoint (Node::txq)
  std::size_t queued_frames_ GUARDED_BY(mutex_) = 0;  // frames in txq_ (flush fast path)
  std::uint64_t next_transfer_ GUARDED_BY(mutex_) = 1;
  std::uint32_t next_can_id_ GUARDED_BY(mutex_) = 0x001;
  Stats stats_;
};

}  // namespace ecqv::can
