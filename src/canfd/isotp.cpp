#include "canfd/isotp.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecqv::can {

namespace {
constexpr std::size_t kSfPlainMax = 7;    // 1-byte PCI
constexpr std::size_t kSfEscapeMax = 62;  // 2-byte PCI in a 64-byte frame
constexpr std::size_t kFfData = 62;       // 64 - 2-byte PCI
constexpr std::size_t kCfData = 63;       // 64 - 1-byte PCI
}  // namespace

std::vector<CanFdFrame> isotp_segment(std::uint32_t can_id, ByteView payload) {
  if (payload.size() > kIsoTpMaxPayload) throw std::invalid_argument("isotp: payload too large");
  std::vector<CanFdFrame> frames;
  // Zero-length payloads use the escape form: a plain PCI of 0x00 would be
  // indistinguishable from the escape marker on the receive side.
  if (payload.size() >= 1 && payload.size() <= kSfPlainMax) {
    Bytes data;
    data.push_back(static_cast<std::uint8_t>(payload.size()));  // 0x0L
    append(data, payload);
    frames.push_back(CanFdFrame::make(can_id, data));
    return frames;
  }
  if (payload.size() <= kSfEscapeMax) {
    Bytes data;
    data.push_back(0x00);  // SF escape
    data.push_back(static_cast<std::uint8_t>(payload.size()));
    append(data, payload);
    frames.push_back(CanFdFrame::make(can_id, data));
    return frames;
  }
  // First frame: 12-bit length + 62 data bytes.
  Bytes first;
  first.push_back(static_cast<std::uint8_t>(0x10 | (payload.size() >> 8)));
  first.push_back(static_cast<std::uint8_t>(payload.size() & 0xff));
  append(first, payload.subspan(0, kFfData));
  frames.push_back(CanFdFrame::make(can_id, first));
  // Consecutive frames with rolling 4-bit sequence starting at 1.
  std::size_t offset = kFfData;
  std::uint8_t seq = 1;
  while (offset < payload.size()) {
    const std::size_t take = std::min(kCfData, payload.size() - offset);
    Bytes cf;
    cf.push_back(static_cast<std::uint8_t>(0x20 | seq));
    append(cf, payload.subspan(offset, take));
    frames.push_back(CanFdFrame::make(can_id, cf));
    offset += take;
    seq = static_cast<std::uint8_t>((seq + 1) & 0x0f);
  }
  return frames;
}

CanFdFrame flow_control_frame(std::uint32_t can_id) {
  // ContinueToSend, BS=0 (no more FCs), STmin=0.
  return CanFdFrame::make(can_id, Bytes{0x30, 0x00, 0x00});
}

std::size_t isotp_frame_count(std::size_t payload_size) {
  if (payload_size <= kSfEscapeMax) return 1;
  const std::size_t rest = payload_size - kFfData;
  return 1 + (rest + kCfData - 1) / kCfData;
}

Result<std::optional<Bytes>> IsoTpReassembler::feed(const CanFdFrame& frame) {
  if (frame.data.empty()) return Error::kDecodeFailed;
  const std::uint8_t pci = frame.data[0];
  const std::uint8_t type = pci >> 4;
  ByteView data(frame.data);

  if (type == 0x0) {  // single frame
    if (in_progress()) {
      // New message while a segmented transfer is in flight: ISO 15765-2
      // terminates the stale transfer and processes the new frame — the
      // recovery path when the old transfer lost its tail.
      expected_ = 0;
      ++aborted_;
    }
    std::size_t len = pci & 0x0f;
    std::size_t header = 1;
    if (len == 0) {  // escape form
      if (data.size() < 2) return Error::kDecodeFailed;
      len = data[1];
      header = 2;
    }
    if (header + len > data.size()) return Error::kDecodeFailed;
    return std::optional<Bytes>(Bytes(data.begin() + static_cast<std::ptrdiff_t>(header),
                                      data.begin() + static_cast<std::ptrdiff_t>(header + len)));
  }

  if (type == 0x1) {  // first frame
    if (in_progress()) {
      expected_ = 0;  // stale transfer terminated; this FF starts fresh
      ++aborted_;
    }
    if (data.size() < 2) return Error::kDecodeFailed;
    expected_ = (static_cast<std::size_t>(pci & 0x0f) << 8) | data[1];
    if (expected_ <= kSfEscapeMax) {
      expected_ = 0;
      return Error::kDecodeFailed;  // must have been a single frame
    }
    buffer_.assign(data.begin() + 2, data.end());
    if (buffer_.size() > expected_) buffer_.resize(expected_);
    next_seq_ = 1;
    return std::optional<Bytes>(std::nullopt);
  }

  if (type == 0x2) {  // consecutive frame
    if (!in_progress()) return Error::kBadState;
    if ((pci & 0x0f) != next_seq_) {
      expected_ = 0;
      ++aborted_;
      return Error::kDecodeFailed;  // sequence error
    }
    next_seq_ = static_cast<std::uint8_t>((next_seq_ + 1) & 0x0f);
    const std::size_t want = expected_ - buffer_.size();
    const std::size_t take = std::min(want, data.size() - 1);
    buffer_.insert(buffer_.end(), data.begin() + 1,
                   data.begin() + 1 + static_cast<std::ptrdiff_t>(take));
    if (buffer_.size() == expected_) {
      expected_ = 0;
      return std::optional<Bytes>(std::move(buffer_));
    }
    return std::optional<Bytes>(std::nullopt);
  }

  if (type == 0x3) {  // flow control — transparent to reassembly
    return std::optional<Bytes>(std::nullopt);
  }
  return Error::kDecodeFailed;
}

}  // namespace ecqv::can
