// Application/session layer of the test suite's network stack (paper
// Fig. 6, top row): every protocol message travels as
//
//   comm code (1) || session comm id (2) || op code (1) || data
//
// The comm code distinguishes traffic classes (key derivation handshake,
// encrypted application data, CA enrollment); the session comm id ties
// messages of one communication session together; the op code encodes the
// protocol step.
#pragma once

#include "common/result.hpp"
#include "core/message.hpp"

namespace ecqv::can {

enum class CommCode : std::uint8_t {
  kKeyDerivation = 0x10,
  kSessionData = 0x20,
  kEnrollment = 0x30,
};

inline constexpr std::size_t kAppHeaderSize = 4;

struct AppPdu {
  CommCode comm_code = CommCode::kKeyDerivation;
  std::uint16_t session_id = 0;
  std::uint8_t op_code = 0;
  Bytes data;

  [[nodiscard]] Bytes encode() const;
  static Result<AppPdu> decode(ByteView bytes);
};

/// Maps a protocol step label ("A1".."B3") to an op code and back.
std::uint8_t op_code_for_step(const std::string& step);
std::string step_for_op_code(std::uint8_t op);

/// Wraps a handshake message into a PDU (and back).
AppPdu wrap_message(const proto::Message& message, std::uint16_t session_id);
Result<proto::Message> unwrap_message(const AppPdu& pdu);

}  // namespace ecqv::can
