// Application/session layer of the test suite's network stack (paper
// Fig. 6, top row): every protocol message travels as
//
//   comm code (1) || session comm id (2) || op code (1) || data
//
// The comm code distinguishes traffic classes (key derivation handshake,
// encrypted application data, CA enrollment); the session comm id ties
// messages of one communication session together; the op code encodes the
// protocol step.
#pragma once

#include "common/result.hpp"
#include "core/message.hpp"

namespace ecqv::can {

enum class CommCode : std::uint8_t {
  kKeyDerivation = 0x10,
  kSessionData = 0x20,
  kEnrollment = 0x30,
};

inline constexpr std::size_t kAppHeaderSize = 4;

struct AppPdu {
  CommCode comm_code = CommCode::kKeyDerivation;
  std::uint16_t session_id = 0;
  std::uint8_t op_code = 0;
  Bytes data;

  [[nodiscard]] Bytes encode() const;
  static Result<AppPdu> decode(ByteView bytes);
};

/// Maps a protocol step label ("A1".."B3") to an op code and back.
std::uint8_t op_code_for_step(const std::string& step);
std::string step_for_op_code(std::uint8_t op);

/// Wraps a handshake message into a PDU (and back).
AppPdu wrap_message(const proto::Message& message, std::uint16_t session_id);
Result<proto::Message> unwrap_message(const AppPdu& pdu);

// ---- fabric extension: the full session lifecycle on the wire ----------
//
// Handshake steps ride CommCode::kKeyDerivation exactly as above; the
// broker's epoch-ratchet announcements ("RK1") and sealed data records
// ("DT1") ride CommCode::kSessionData with their own op codes. Bit 0x10
// marks the responder as sender, mirroring the step-label convention.
//
// Piggybacked rekeying needs NO extra op code: the epoch-signal field lives
// inside the sealed record itself (SecureChannel's epoch || flags header,
// covered by the record MAC), so a DT1 that advances the key chain is
// byte-for-byte a DT1 on the bus — the wire cannot tell a rekeying record
// from a plain one, and wrap_fabric/unwrap_fabric carry the new record
// form end-to-end unchanged.

inline constexpr std::uint8_t kOpRatchet = 0x01;
inline constexpr std::uint8_t kOpDataRecord = 0x02;
inline constexpr std::uint8_t kOpRatchetAck = 0x03;  // "RK2", reliability ack
inline constexpr std::uint8_t kOpResponderBit = 0x10;

/// Maps ANY fabric message (handshake step, RK1 ratchet announcement, DT1
/// data record) onto a PDU and back — what the CAN-FD transport speaks.
AppPdu wrap_fabric(const proto::Message& message, std::uint16_t session_id);
Result<proto::Message> unwrap_fabric(const AppPdu& pdu);

}  // namespace ecqv::can
