// HMAC_DRBG with SHA-256 (NIST SP 800-90A §10.1.2), no prediction
// resistance, reseed via reseed().
//
// Doubles as the deterministic-nonce engine for RFC 6979 (ecdsa/rfc6979.cpp
// instantiates it with the private key and message digest per that RFC).
#pragma once

#include "hash/hmac.hpp"
#include "rng/rng.hpp"

namespace ecqv::rng {

class HmacDrbg final : public Rng {
 public:
  /// Instantiates from entropy (+ optional nonce/personalization).
  explicit HmacDrbg(ByteView entropy, ByteView nonce = {}, ByteView personalization = {});

  void fill(ByteSpan out) override;

  /// Mixes fresh entropy into the state (SP 800-90A reseed).
  void reseed(ByteView entropy, ByteView additional = {});

  /// Generates with additional input (used by RFC 6979 retry loop).
  void generate(ByteSpan out, ByteView additional);

 private:
  void update(ByteView data1, ByteView data2 = {}, ByteView data3 = {});

  std::array<std::uint8_t, hash::kSha256DigestSize> key_{};
  std::array<std::uint8_t, hash::kSha256DigestSize> value_{};
};

}  // namespace ecqv::rng
