// Mutex-serialized Rng adapter.
//
// The concurrent broker's workers all draw ephemerals through the one Rng
// their SessionBroker was built with; most Rng implementations (TestRng,
// HMAC-DRBG) carry mutable state, so unsynchronized concurrent fill() calls
// would corrupt it. Wrapping the inner Rng here makes any generator safe to
// share: draws serialize, each caller still receives a distinct stream
// prefix. Deterministic seeds stay deterministic per-process but the
// per-thread interleaving is scheduling-dependent — exactly the semantics a
// shared hardware TRNG would have.
#pragma once

#include <mutex>

#include "rng/rng.hpp"

namespace ecqv::rng {

class LockedRng final : public Rng {
 public:
  explicit LockedRng(Rng& inner) : inner_(inner) {}

  void fill(ByteSpan out) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_.fill(out);
  }

 private:
  Rng& inner_;
  std::mutex mutex_;
};

}  // namespace ecqv::rng
