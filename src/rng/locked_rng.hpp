// Mutex-serialized Rng adapter.
//
// The concurrent broker's workers all draw ephemerals through the one Rng
// their SessionBroker was built with; most Rng implementations (TestRng,
// HMAC-DRBG) carry mutable state, so unsynchronized concurrent fill() calls
// would corrupt it. Wrapping the inner Rng here makes any generator safe to
// share: draws serialize, each caller still receives a distinct stream
// prefix. Deterministic seeds stay deterministic per-process but the
// per-thread interleaving is scheduling-dependent — exactly the semantics a
// shared hardware TRNG would have.
#pragma once

#include "common/sync.hpp"
#include "rng/rng.hpp"

namespace ecqv::rng {

class LockedRng final : public Rng {
 public:
  explicit LockedRng(Rng& inner) : inner_(inner) {}

  void fill(ByteSpan out) override {
    StdMutexLock lock(mutex_);
    inner_.fill(out);
  }

 private:
  // The inner generator's mutable state is what the lock protects; the
  // reference itself is immutable, so the capability guards the fill()
  // call, not a field.
  Rng& inner_;
  Mutex mutex_;
};

}  // namespace ecqv::rng
