#include "rng/test_rng.hpp"

namespace ecqv::rng {

namespace {
Bytes seed_bytes(std::uint64_t seed) {
  Bytes b(8);
  store_be64(b, seed);
  return b;
}
}  // namespace

TestRng::TestRng(std::uint64_t seed)
    : drbg_(seed_bytes(seed), bytes_of("ecqv-sts-test-rng"), {}) {}

void TestRng::fill(ByteSpan out) { drbg_.fill(out); }

}  // namespace ecqv::rng
