#include "rng/system_rng.hpp"

#include <fstream>
#include <stdexcept>

namespace ecqv::rng {

void SystemRng::fill(ByteSpan out) {
  static thread_local std::ifstream urandom("/dev/urandom", std::ios::binary);
  if (!urandom.is_open()) throw std::runtime_error("SystemRng: cannot open /dev/urandom");
  urandom.read(reinterpret_cast<char*>(out.data()), static_cast<std::streamsize>(out.size()));
  if (urandom.gcount() != static_cast<std::streamsize>(out.size()))
    throw std::runtime_error("SystemRng: short read from /dev/urandom");
}

SystemRng& SystemRng::instance() {
  static SystemRng rng;
  return rng;
}

}  // namespace ecqv::rng
