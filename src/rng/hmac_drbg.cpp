#include "rng/hmac_drbg.hpp"

#include "common/metrics.hpp"

namespace ecqv::rng {

namespace {
constexpr std::uint8_t kSep0 = 0x00;
constexpr std::uint8_t kSep1 = 0x01;
}  // namespace

HmacDrbg::HmacDrbg(ByteView entropy, ByteView nonce, ByteView personalization) {
  key_.fill(0x00);
  value_.fill(0x01);
  update(entropy, nonce, personalization);
}

void HmacDrbg::update(ByteView data1, ByteView data2, ByteView data3) {
  // K = HMAC(K, V || 0x00 || data); V = HMAC(K, V)
  {
    hash::HmacSha256 mac(key_);
    mac.update(value_);
    mac.update(ByteView(&kSep0, 1));
    mac.update(data1);
    mac.update(data2);
    mac.update(data3);
    key_ = mac.finish();
  }
  value_ = hash::hmac_sha256(key_, value_);
  if (data1.empty() && data2.empty() && data3.empty()) return;
  {
    hash::HmacSha256 mac(key_);
    mac.update(value_);
    mac.update(ByteView(&kSep1, 1));
    mac.update(data1);
    mac.update(data2);
    mac.update(data3);
    key_ = mac.finish();
  }
  value_ = hash::hmac_sha256(key_, value_);
}

void HmacDrbg::generate(ByteSpan out, ByteView additional) {
  count_op(Op::kDrbgByte, out.size());
  if (!additional.empty()) update(additional);
  std::size_t off = 0;
  while (off < out.size()) {
    value_ = hash::hmac_sha256(key_, value_);
    const std::size_t take = std::min(value_.size(), out.size() - off);
    std::copy(value_.begin(), value_.begin() + static_cast<std::ptrdiff_t>(take),
              out.begin() + static_cast<std::ptrdiff_t>(off));
    off += take;
  }
  update(additional);
}

void HmacDrbg::fill(ByteSpan out) { generate(out, {}); }

void HmacDrbg::reseed(ByteView entropy, ByteView additional) { update(entropy, additional); }

}  // namespace ecqv::rng
