// Random number generation interface.
//
// Weak randomness is the paper's introduction in a nutshell ([1], [13]):
// ephemeral key security is only as good as the RNG feeding eq. (2). The
// library routes all randomness through this interface so deployments can
// plug a TRNG, tests can inject determinism, and the DRBG can be reseeded
// per policy.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace ecqv::rng {

class Rng {
 public:
  virtual ~Rng() = default;

  /// Fills `out` with random bytes.
  virtual void fill(ByteSpan out) = 0;

  /// Convenience: a fresh buffer of `n` random bytes.
  Bytes bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }
};

}  // namespace ecqv::rng
