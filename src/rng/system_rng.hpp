// OS entropy source (/dev/urandom), the default production RNG.
#pragma once

#include "rng/rng.hpp"

namespace ecqv::rng {

class SystemRng final : public Rng {
 public:
  void fill(ByteSpan out) override;

  /// Process-wide shared instance (thread-safe: the underlying read is).
  static SystemRng& instance();
};

}  // namespace ecqv::rng
