// Deterministic RNG for tests and reproducible benchmarks: an HMAC-DRBG
// seeded from a caller-provided integer. Identical seeds yield identical
// protocol transcripts, which the property tests and the attack harness rely
// on. Never use outside tests/benches.
#pragma once

#include <cstdint>

#include "rng/hmac_drbg.hpp"

namespace ecqv::rng {

class TestRng final : public Rng {
 public:
  explicit TestRng(std::uint64_t seed);

  void fill(ByteSpan out) override;

 private:
  HmacDrbg drbg_;
};

}  // namespace ecqv::rng
