// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
#pragma once

#include "hash/sha256.hpp"

namespace ecqv::hash {

class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void update(ByteView data);
  [[nodiscard]] Digest finish();

  /// Restarts a MAC computation under the same key.
  void reset();

 private:
  std::array<std::uint8_t, kSha256BlockSize> ipad_{};
  std::array<std::uint8_t, kSha256BlockSize> opad_{};
  Sha256 inner_;
};

/// One-shot convenience.
Digest hmac_sha256(ByteView key, ByteView data);
Digest hmac_sha256(ByteView key, std::initializer_list<ByteView> parts);

}  // namespace ecqv::hash
