#include "hash/hkdf.hpp"

#include <stdexcept>

namespace ecqv::hash {

Digest hkdf_extract(ByteView salt, ByteView ikm) { return hmac_sha256(salt, ikm); }

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) throw std::invalid_argument("hkdf_expand: too long");
  Bytes okm;
  okm.reserve(length);
  Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 mac(prk);
    mac.update(ByteView(t.data(), t_len));
    mac.update(info);
    mac.update(ByteView(&counter, 1));
    t = mac.finish();
    t_len = t.size();
    const std::size_t take = std::min(t_len, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return okm;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  const Digest prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace ecqv::hash
