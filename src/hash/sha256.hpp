// SHA-256 (FIPS 180-4).
//
// Streaming interface plus one-shot helper. The compression function bumps
// Op::kSha256Block so the device cost model prices hashing by the number of
// 64-byte blocks actually processed.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace ecqv::hash {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);

  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  [[nodiscard]] Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kSha256BlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
Digest sha256(ByteView data);

/// One-shot over a concatenation, avoiding an intermediate buffer.
Digest sha256(std::initializer_list<ByteView> parts);

}  // namespace ecqv::hash
