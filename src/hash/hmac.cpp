#include "hash/hmac.hpp"

#include "common/metrics.hpp"

namespace ecqv::hash {

HmacSha256::HmacSha256(ByteView key) {
  std::array<std::uint8_t, kSha256BlockSize> k{};
  if (key.size() > kSha256BlockSize) {
    const Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  reset();
}

void HmacSha256::reset() {
  inner_.reset();
  inner_.update(ipad_);
}

void HmacSha256::update(ByteView data) { inner_.update(data); }

Digest HmacSha256::finish() {
  count_op(Op::kHmac);
  const Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_);
  outer.update(inner_digest);
  return outer.finish();
}

Digest hmac_sha256(ByteView key, ByteView data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finish();
}

Digest hmac_sha256(ByteView key, std::initializer_list<ByteView> parts) {
  HmacSha256 mac(key);
  for (const auto& p : parts) mac.update(p);
  return mac.finish();
}

}  // namespace ecqv::hash
