// HKDF (RFC 5869) over HMAC-SHA256.
//
// This is the KDF of paper eq. (4): KS = KDF(KPM, salt). extract() condenses
// the ECDH premaster into a PRK; expand() stretches it into the session key
// hierarchy (see kdf/session_keys.hpp).
#pragma once

#include "hash/hmac.hpp"

namespace ecqv::hash {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Digest hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: OKM of `length` bytes (<= 255 * 32) from PRK and info.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace ecqv::hash
