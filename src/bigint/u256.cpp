#include "bigint/u256.hpp"

#include <stdexcept>

#include "common/hex.hpp"

namespace ecqv::bi {

using u128 = unsigned __int128;

unsigned U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (w[static_cast<std::size_t>(i)] != 0) {
      const auto limb = w[static_cast<std::size_t>(i)];
      return static_cast<unsigned>(i) * 64 + (64 - static_cast<unsigned>(__builtin_clzll(limb)));
    }
  }
  return 0;
}

bool U512::is_zero() const {
  std::uint64_t acc = 0;
  for (auto limb : w) acc |= limb;
  return acc == 0;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 r{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] + r.w[i + j] + carry;
      r.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    r.w[i + 4] = carry;
  }
  return r;
}

U256 from_be_bytes(ByteView bytes) {
  if (bytes.size() != 32) throw std::invalid_argument("U256::from_be_bytes: need 32 bytes");
  U256 r;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t limb = 0;
    for (std::size_t j = 0; j < 8; ++j) limb = (limb << 8) | bytes[i * 8 + j];
    r.w[3 - i] = limb;
  }
  return r;
}

void to_be_bytes(const U256& a, ByteSpan out) {
  if (out.size() < 32) throw std::invalid_argument("U256::to_be_bytes: need 32 bytes");
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t limb = a.w[3 - i];
    for (std::size_t j = 0; j < 8; ++j)
      out[i * 8 + j] = static_cast<std::uint8_t>(limb >> (56 - 8 * j));
  }
}

Bytes to_be_bytes(const U256& a) {
  Bytes out(32);
  to_be_bytes(a, out);
  return out;
}

U256 from_hex256(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.size() > 64) throw std::invalid_argument("from_hex256: more than 64 digits");
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  return from_be_bytes(from_hex(padded));
}

std::string to_hex(const U256& a) { return ecqv::to_hex(to_be_bytes(a)); }

}  // namespace ecqv::bi
