// 8-way Montgomery field arithmetic in radix 2^52 — the data layout AVX-512
// IFMA wants (vpmadd52luq/vpmadd52huq multiply 52-bit limbs into 64-bit
// accumulators, so carries are deferred across whole multiplication rounds).
//
// A 256-bit field element is five 52-bit limbs; eight elements travel
// together in a limb-major Fe52x8 (limb i of all eight lanes is one
// contiguous, cacheline-aligned 512-bit row — exactly one zmm load). The
// lane operates in its own Montgomery domain with R52 = 2^260: an element
// x enters as x*2^260 mod m, and mont8_mul computes a*b*2^-260. Bridging to
// the scalar engine's 2^256 domain is a single lane multiplication by a
// precomputed constant in each direction (see Mont52Ctx::to_lane/from_lane).
//
// Two implementations sit behind mont8_mul/mont8_sqr:
//  * mont8_avx512.cpp — the IFMA kernel, compiled with a function-level
//    target attribute so the rest of the build stays portable; selected at
//    run time when the CPU reports AVX-512F + AVX-512 IFMA and the
//    ECQV_DISABLE_IFMA environment kill switch is unset.
//  * the portable 8-wide fallback in mont52.cpp — the same algorithm on
//    unsigned __int128, bit-identical results on any hardware.
//
// tests/test_mont_dispatch.cpp pins both against RefMontCtx.
//
// Cost accounting note: these entry points are RAW (uncounted), like
// MontCtx::mul_raw. Callers count Op::kFpMul/kFpSqr per LOGICAL field
// operation — eight per full vector call — so the sim cost model sees the
// work an embedded scalar device would execute, not our SIMD call count.
#pragma once

#include <cstdint>

#include "bigint/u256.hpp"

namespace ecqv::bi {

inline constexpr int kFe52Limbs = 5;
inline constexpr std::uint64_t kFe52Mask = (std::uint64_t{1} << 52) - 1;

/// Eight field elements in radix-2^52, limb-major: l[i][lane] is limb i of
/// lane `lane`. 64-byte alignment makes every limb row one aligned zmm.
struct alignas(64) Fe52x8 {
  std::uint64_t l[kFe52Limbs][8];
};

/// Per-modulus constants for the radix-52 lane (built once per modulus,
/// alongside the scalar MontCtx).
class Mont52Ctx {
 public:
  /// Odd modulus with 2^255 < m < 2^256 (both secp256r1 moduli).
  explicit Mont52Ctx(const U256& modulus);

  std::uint64_t m[kFe52Limbs];       // modulus, radix-52
  std::uint64_t n0;                  // -m^-1 mod 2^52
  std::uint64_t to_lane[kFe52Limbs];    // 2^264 mod m: 2^256-domain -> lane
  std::uint64_t from_lane[kFe52Limbs];  // 2^256 mod m: lane -> 2^256-domain
  U256 modulus;
};

/// Repack a 4x64 value (< 2^256) into five 52-bit limbs and back. Pure bit
/// moves — no domain change.
void u256_to_fe52(std::uint64_t out[kFe52Limbs], const U256& a);
[[nodiscard]] U256 fe52_to_u256(const std::uint64_t in[kFe52Limbs]);

/// True when the hardware IFMA kernel is active (AVX-512F + IFMA reported
/// by the CPU and ECQV_DISABLE_IFMA unset/0; compile gate ECQV_NO_IFMA).
/// When false, mont8_mul/mont8_sqr still work via the portable fallback —
/// this predicate exists so batch heuristics only pick the wide path when
/// it actually beats the scalar ADX kernels.
[[nodiscard]] bool mont8_hw_available();

/// out[lane] = a[lane] * b[lane] * 2^-260 mod m, fully reduced (< m).
/// Inputs must be limb-normalized (< 2^52 per limb) and < m.
void mont8_mul(Fe52x8& out, const Fe52x8& a, const Fe52x8& b, const Mont52Ctx& ctx);

/// Eight logical squarings (mul(a, a) — IFMA has no cheaper square).
void mont8_sqr(Fe52x8& out, const Fe52x8& a, const Mont52Ctx& ctx);

/// Broadcast one scalar (radix-52) value to all eight lanes.
[[nodiscard]] Fe52x8 fe52x8_broadcast(const std::uint64_t v[kFe52Limbs]);

/// Bridge from the scalar engine: packs eight 2^256-domain Montgomery
/// residues and rebases them into the lane's 2^260 domain (one lane mul).
void mont8_load(Fe52x8& out, const U256 in[8], const Mont52Ctx& ctx);

/// Bridge back: rebases to the 2^256 domain and unpacks (one lane mul).
void mont8_store(U256 out[8], const Fe52x8& in, const Mont52Ctx& ctx);

// Internal entry points, exposed so the dispatch-matrix tests can pin each
// implementation explicitly regardless of what the CPU reports.
namespace detail {
void mont8_mul_portable(Fe52x8& out, const Fe52x8& a, const Fe52x8& b, const Mont52Ctx& ctx);
#if defined(__x86_64__) && !defined(ECQV_NO_IFMA)
#define ECQV_MONT8_IFMA 1
void mont8_mul_ifma(Fe52x8& out, const Fe52x8& a, const Fe52x8& b, const Mont52Ctx& ctx);
#endif
}  // namespace detail

}  // namespace ecqv::bi
