// Hand-scheduled x86-64 Montgomery multiplication/squaring for the P-256
// field prime.
//
// Why assembly: GCC compiles the portable __int128 carry chains in mont.hpp
// to ~500 instructions per multiplication (measured with objdump; dominated
// by register shuffling around setc/movzx sequences). The algorithm needs
// ~130. These kernels use BMI2 mulx (flag-free multiply, so products
// pipeline independently) and the adcx/adox dual carry chains, which cuts
// the measured cost of one multiplication roughly in half on the dependent
// path and better than that when neighboring multiplies are independent, as
// they are inside the point formulas.
//
// The Montgomery m-step needs no multiplies at all: -p^-1 mod 2^64 == 1 for
// the P-256 prime, so the fold factor IS the low limb, and
//   m * p = (m<<256) - (m<<224) + (m<<192) + (m<<96) - m
// turns each m*p partial product into two shifts and an add/sub pair.
//
// The paired entry points (mul2/sqr2) run two INDEPENDENT operations in one
// call: the bodies are simply concatenated, and the out-of-order window
// overlaps them via register renaming — measured close to the throughput
// bound rather than twice the dependent latency. The point formulas feed
// them their independent multiplication pairs.
//
// Availability is gated at compile time (x86-64 ELF) and at run time
// (MontCtx checks BMI2+ADX via __builtin_cpu_supports before dispatching).
// tests/test_mont_fastpath.cpp pins these kernels bit-exactly against the
// generic reference implementation on tens of thousands of random inputs,
// including carry-boundary values.
#include "bigint/mont.hpp"

#if defined(ECQV_P256_ASM)

asm(R"(
.text
.p2align 5

# One interleaved-CIOS multiplication round: accumulate a_i * b via the
# adcx/adox dual carry chains, then fold the low limb with the
# multiplication-free P-256 m-step. State rotates one register per round.
.macro ECQV_P256_MUL_ROUND off, t0, t1, t2, t3, t4, t5
  movq  \off(%rsi), %rdx
  xorl  %eax, %eax            # clear CF and OF
  mulx  %r8, %rax, %rcx
  adcx  %rax, %\t0
  adox  %rcx, %\t1
  mulx  %r9, %rax, %rcx
  adcx  %rax, %\t1
  adox  %rcx, %\t2
  mulx  %r10, %rax, %rcx
  adcx  %rax, %\t2
  adox  %rcx, %\t3
  mulx  %r11, %rax, %rcx
  adcx  %rax, %\t3
  adox  %rcx, %\t4
  movl  $0, %ecx
  adcx  %rcx, %\t4
  adox  %rcx, %\t5
  adcx  %rcx, %\t5
  # m-step: m = t0; m*p = (m<<256) - (m<<224) + (m<<192) + (m<<96) - m
  movq  %\t0, %rcx
  movq  %\t0, %rax
  shlq  $32, %rcx             # m << 32
  shrq  $32, %rax             # m >> 32
  movq  %\t0, %rdx
  subq  %rcx, %rdx            # lo3 = m - (m<<32)
  sbbq  %rax, %\t0            # hi3 = m - (m>>32) - borrow (recycles t0)
  addq  %rcx, %\t1
  adcq  %rax, %\t2
  adcq  %rdx, %\t3
  adcq  %\t0, %\t4
  adcq  $0, %\t5
  xorq  %\t0, %\t0            # becomes next round's top guard
.endm

# Full multiplication body. Calling convention (internal): out -> %rdi,
# a -> %rsi, b -> %rbx. The b limbs are loaded up front, after which %rbx
# is recycled as accumulator state; %rdi and %rsi survive.
.macro ECQV_P256_MUL_BODY
  movq  0(%rbx), %r8
  movq  8(%rbx), %r9
  movq  16(%rbx), %r10
  movq  24(%rbx), %r11
  xorl  %r12d, %r12d
  xorl  %r13d, %r13d
  xorl  %r14d, %r14d
  xorl  %r15d, %r15d
  xorl  %ebp, %ebp
  xorl  %ebx, %ebx
  ECQV_P256_MUL_ROUND 0,  r12, r13, r14, r15, rbp, rbx
  ECQV_P256_MUL_ROUND 8,  r13, r14, r15, rbp, rbx, r12
  ECQV_P256_MUL_ROUND 16, r14, r15, rbp, rbx, r12, r13
  ECQV_P256_MUL_ROUND 24, r15, rbp, rbx, r12, r13, r14
  # result in rbp:rbx:r12:r13 (low to high), guard bit in r14
  movq  $-1, %r8
  movl  $0xffffffff, %r9d
  xorl  %r10d, %r10d
  movabsq $0xffffffff00000001, %r11
  movq  %rbp, %rax
  movq  %rbx, %rcx
  movq  %r12, %rdx
  movq  %r13, %r15
  subq  %r8, %rax
  sbbq  %r9, %rcx
  sbbq  %r10, %rdx
  sbbq  %r11, %r15
  sbbq  $0, %r14              # guard - borrow: -1 iff r < p (keep r)
  sarq  $63, %r14
  cmovneq %rbp, %rax
  cmovneq %rbx, %rcx
  cmovneq %r12, %rdx
  cmovneq %r13, %r15
  movq  %rax, 0(%rdi)
  movq  %rcx, 8(%rdi)
  movq  %rdx, 16(%rdi)
  movq  %r15, 24(%rdi)
.endm

# One reduction-only m-step over the 8-limb square; pending carry in rbp.
.macro ECQV_P256_RED_STEP t0, t1, t2, t3, t4, t5
  movq  %\t0, %rcx
  movq  %\t0, %rax
  shlq  $32, %rcx
  shrq  $32, %rax
  movq  %\t0, %rdx
  subq  %rcx, %rdx
  sbbq  %rax, %\t0
  addq  %rcx, %\t1
  adcq  %rax, %\t2
  adcq  %rdx, %\t3
  adcq  %\t0, %\t4
  adcq  %rbp, %\t5
  movl  $0, %ebp
  adcq  $0, %rbp
.endm

# Full squaring body: input a -> %rsi, output -> %rdi. Dedicated squaring:
# 10 limb products (each cross product once, doubled) instead of 16.
# Preserves %rdi and %rbx; destroys %rsi in its final select.
.macro ECQV_P256_SQR_BODY
  movq  0(%rsi), %rdx
  mulx  8(%rsi), %r9, %r10     # a0*a1
  mulx  16(%rsi), %rax, %r11   # a0*a2
  mulx  24(%rsi), %rcx, %r12   # a0*a3
  addq  %rax, %r10
  adcq  %rcx, %r11
  adcq  $0, %r12
  movq  8(%rsi), %rdx
  mulx  16(%rsi), %rax, %rcx   # a1*a2
  addq  %rax, %r11
  adcq  %rcx, %r12
  mulx  24(%rsi), %rax, %r13   # a1*a3
  adcq  $0, %r13               # fold pending carry into position 5
  addq  %rax, %r12
  adcq  $0, %r13
  movq  16(%rsi), %rdx
  mulx  24(%rsi), %rax, %r14   # a2*a3
  addq  %rax, %r13
  adcq  $0, %r14
  xorl  %r15d, %r15d
  # double the cross products
  addq  %r9, %r9
  adcq  %r10, %r10
  adcq  %r11, %r11
  adcq  %r12, %r12
  adcq  %r13, %r13
  adcq  %r14, %r14
  adcq  $0, %r15
  # diagonals (mulx preserves flags: one adc chain spans all four)
  movq  0(%rsi), %rdx
  mulx  %rdx, %r8, %rax
  addq  %rax, %r9
  movq  8(%rsi), %rdx
  mulx  %rdx, %rax, %rcx
  adcq  %rax, %r10
  adcq  %rcx, %r11
  movq  16(%rsi), %rdx
  mulx  %rdx, %rax, %rcx
  adcq  %rax, %r12
  adcq  %rcx, %r13
  movq  24(%rsi), %rdx
  mulx  %rdx, %rax, %rcx
  adcq  %rax, %r14
  adcq  %rcx, %r15
  # reduction: 4 multiplication-free m-steps
  xorl  %ebp, %ebp
  ECQV_P256_RED_STEP r8,  r9,  r10, r11, r12, r13
  ECQV_P256_RED_STEP r9,  r10, r11, r12, r13, r14
  ECQV_P256_RED_STEP r10, r11, r12, r13, r14, r15
  movq  %r11, %rcx             # final step: overflow lands in the guard
  movq  %r11, %rax
  shlq  $32, %rcx
  shrq  $32, %rax
  movq  %r11, %rdx
  subq  %rcx, %rdx
  sbbq  %rax, %r11
  addq  %rcx, %r12
  adcq  %rax, %r13
  adcq  %rdx, %r14
  adcq  %r11, %r15
  adcq  $0, %rbp
  # result r12..r15, guard rbp; branchless conditional subtract of p
  movq  $-1, %r8
  movl  $0xffffffff, %r9d
  xorl  %r10d, %r10d
  movabsq $0xffffffff00000001, %r11
  movq  %r12, %rax
  movq  %r13, %rcx
  movq  %r14, %rdx
  movq  %r15, %rsi
  subq  %r8, %rax
  sbbq  %r9, %rcx
  sbbq  %r10, %rdx
  sbbq  %r11, %rsi
  sbbq  $0, %rbp
  sarq  $63, %rbp
  cmovneq %r12, %rax
  cmovneq %r13, %rcx
  cmovneq %r14, %rdx
  cmovneq %r15, %rsi
  movq  %rax, 0(%rdi)
  movq  %rcx, 8(%rdi)
  movq  %rdx, 16(%rdi)
  movq  %rsi, 24(%rdi)
.endm

# void ecqv_p256_mul_mont(uint64_t out[4], const uint64_t a[4],
#                         const uint64_t b[4]);
.globl ecqv_p256_mul_mont
.hidden ecqv_p256_mul_mont
.type ecqv_p256_mul_mont, @function
ecqv_p256_mul_mont:
  pushq %rbx
  pushq %rbp
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq  %rdx, %rbx
  ECQV_P256_MUL_BODY
  popq  %r15
  popq  %r14
  popq  %r13
  popq  %r12
  popq  %rbp
  popq  %rbx
  ret
.size ecqv_p256_mul_mont, .-ecqv_p256_mul_mont

# void ecqv_p256_mul2_mont(uint64_t o1[4], const uint64_t a1[4],
#                          const uint64_t b1[4], uint64_t o2[4],
#                          const uint64_t a2[4], const uint64_t b2[4]);
# Two INDEPENDENT multiplications; o1 must not alias a2/b2.
.globl ecqv_p256_mul2_mont
.hidden ecqv_p256_mul2_mont
.type ecqv_p256_mul2_mont, @function
ecqv_p256_mul2_mont:
  pushq %rbx
  pushq %rbp
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq  %rcx, -8(%rsp)        # o2   (red zone; the bodies are leaf code)
  movq  %r8, -16(%rsp)        # a2
  movq  %r9, -24(%rsp)        # b2
  movq  %rdx, %rbx
  ECQV_P256_MUL_BODY
  movq  -8(%rsp), %rdi
  movq  -16(%rsp), %rsi
  movq  -24(%rsp), %rbx
  ECQV_P256_MUL_BODY
  popq  %r15
  popq  %r14
  popq  %r13
  popq  %r12
  popq  %rbp
  popq  %rbx
  ret
.size ecqv_p256_mul2_mont, .-ecqv_p256_mul2_mont

# void ecqv_p256_sqr_mont(uint64_t out[4], const uint64_t a[4]);
.globl ecqv_p256_sqr_mont
.hidden ecqv_p256_sqr_mont
.type ecqv_p256_sqr_mont, @function
ecqv_p256_sqr_mont:
  pushq %rbx
  pushq %rbp
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  ECQV_P256_SQR_BODY
  popq  %r15
  popq  %r14
  popq  %r13
  popq  %r12
  popq  %rbp
  popq  %rbx
  ret
.size ecqv_p256_sqr_mont, .-ecqv_p256_sqr_mont

# void ecqv_p256_sqr2_mont(uint64_t o1[4], const uint64_t a1[4],
#                          uint64_t o2[4], const uint64_t a2[4]);
# Two INDEPENDENT squarings; o1 must not alias a2.
.globl ecqv_p256_sqr2_mont
.hidden ecqv_p256_sqr2_mont
.type ecqv_p256_sqr2_mont, @function
ecqv_p256_sqr2_mont:
  pushq %rbx
  pushq %rbp
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq  %rdx, -8(%rsp)        # o2
  movq  %rcx, -16(%rsp)       # a2
  ECQV_P256_SQR_BODY
  movq  -8(%rsp), %rdi
  movq  -16(%rsp), %rsi
  ECQV_P256_SQR_BODY
  popq  %r15
  popq  %r14
  popq  %r13
  popq  %r12
  popq  %rbp
  popq  %rbx
  ret
.size ecqv_p256_sqr2_mont, .-ecqv_p256_sqr2_mont

# ---------------------------------------------------------------------------
# Modulus-parameterized Montgomery multiplication: the same interleaved-CIOS
# BMI2/ADX schedule as the P-256 kernel above, but the m-step is a real
# mulx against modulus limbs passed by the caller (with n0' = -m^-1 mod 2^64
# as an operand) instead of the P-256 shift/add identity. This is what lets
# MontCtx instances for the secp256r1 group order n — every mod-n multiply
# in ECDSA signing and batch-verify scalar prep — dispatch to asm instead of
# the ~40-instruction-per-limb portable CIOS path.
#
# The modulus limbs and n0' live in the red zone below rsp (leaf code, same
# convention the paired p256 entry points use), because every general-
# purpose register is already claimed: 6 rotating accumulators, 4 b limbs,
# 2 mulx temporaries, the multiplier, and the out/a pointers.

# One round: accumulate a_i * b, then fold the low limb with
# t += (t0 * n0') * m. After the fold t0 is exactly 0 and becomes the next
# round's top guard — no explicit clear needed.
.macro ECQV_MONT_MUL_ROUND off, t0, t1, t2, t3, t4, t5
  movq  \off(%rsi), %rdx
  xorl  %eax, %eax            # clear CF and OF
  mulx  %r8, %rax, %rcx
  adcx  %rax, %\t0
  adox  %rcx, %\t1
  mulx  %r9, %rax, %rcx
  adcx  %rax, %\t1
  adox  %rcx, %\t2
  mulx  %r10, %rax, %rcx
  adcx  %rax, %\t2
  adox  %rcx, %\t3
  mulx  %r11, %rax, %rcx
  adcx  %rax, %\t3
  adox  %rcx, %\t4
  movl  $0, %ecx
  adcx  %rcx, %\t4
  adox  %rcx, %\t5
  adcx  %rcx, %\t5
  # m-step: mfac = t0 * n0'; t += mfac * m (dual carry chains again)
  movq  -16(%rsp), %rdx
  imulq %\t0, %rdx            # mfac; flags are dead here
  xorl  %eax, %eax
  mulx  -24(%rsp), %rax, %rcx
  adcx  %rax, %\t0            # t0 wraps to exactly 0 (mfac construction)
  adox  %rcx, %\t1
  mulx  -32(%rsp), %rax, %rcx
  adcx  %rax, %\t1
  adox  %rcx, %\t2
  mulx  -40(%rsp), %rax, %rcx
  adcx  %rax, %\t2
  adox  %rcx, %\t3
  mulx  -48(%rsp), %rax, %rcx
  adcx  %rax, %\t3
  adox  %rcx, %\t4
  movl  $0, %ecx
  adcx  %rcx, %\t4
  adox  %rcx, %\t5
  adcx  %rcx, %\t5
.endm

# void ecqv_mont_mul_adx(uint64_t out[4], const uint64_t a[4],
#                        const uint64_t b[4], const uint64_t m[4],
#                        uint64_t n0);
# out = a * b * 2^-256 mod m, fully reduced; m odd, 2^255 < m < 2^256.
.globl ecqv_mont_mul_adx
.hidden ecqv_mont_mul_adx
.type ecqv_mont_mul_adx, @function
ecqv_mont_mul_adx:
  pushq %rbx
  pushq %rbp
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq  %r8, -16(%rsp)        # n0'
  movq  0(%rcx), %rax         # spill modulus limbs next to it
  movq  %rax, -24(%rsp)
  movq  8(%rcx), %rax
  movq  %rax, -32(%rsp)
  movq  16(%rcx), %rax
  movq  %rax, -40(%rsp)
  movq  24(%rcx), %rax
  movq  %rax, -48(%rsp)
  movq  0(%rdx), %r8          # b limbs stay in registers
  movq  8(%rdx), %r9
  movq  16(%rdx), %r10
  movq  24(%rdx), %r11
  xorl  %r12d, %r12d
  xorl  %r13d, %r13d
  xorl  %r14d, %r14d
  xorl  %r15d, %r15d
  xorl  %ebp, %ebp
  xorl  %ebx, %ebx
  ECQV_MONT_MUL_ROUND 0,  r12, r13, r14, r15, rbp, rbx
  ECQV_MONT_MUL_ROUND 8,  r13, r14, r15, rbp, rbx, r12
  ECQV_MONT_MUL_ROUND 16, r14, r15, rbp, rbx, r12, r13
  ECQV_MONT_MUL_ROUND 24, r15, rbp, rbx, r12, r13, r14
  # result in rbp:rbx:r12:r13 (low to high), guard in r14
  movq  %rbp, %rax
  movq  %rbx, %rcx
  movq  %r12, %rdx
  movq  %r13, %r15
  subq  -24(%rsp), %rax
  sbbq  -32(%rsp), %rcx
  sbbq  -40(%rsp), %rdx
  sbbq  -48(%rsp), %r15
  sbbq  $0, %r14              # guard - borrow: -1 iff r < m (keep r)
  sarq  $63, %r14
  cmovneq %rbp, %rax
  cmovneq %rbx, %rcx
  cmovneq %r12, %rdx
  cmovneq %r13, %r15
  movq  %rax, 0(%rdi)
  movq  %rcx, 8(%rdi)
  movq  %rdx, 16(%rdi)
  movq  %r15, 24(%rdi)
  popq  %r15
  popq  %r14
  popq  %r13
  popq  %r12
  popq  %rbp
  popq  %rbx
  ret
.size ecqv_mont_mul_adx, .-ecqv_mont_mul_adx
)");

#endif  // ECQV_P256_ASM
