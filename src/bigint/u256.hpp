// Fixed-width 256-bit unsigned integers.
//
// All elliptic-curve and scalar arithmetic in this library runs over
// secp256r1, so a fixed four-limb representation (little-endian 64-bit
// limbs) is used throughout: no heap allocation, trivially copyable, and
// every loop bound is a compile-time constant — exactly what constrained
// targets want and what makes timing behaviour predictable.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace ecqv::bi {

struct U256 {
  // w[0] is the least-significant limb.
  std::array<std::uint64_t, 4> w{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : w{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2, std::uint64_t w3)
      : w{w0, w1, w2, w3} {}

  [[nodiscard]] constexpr bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  [[nodiscard]] constexpr bool is_odd() const { return (w[0] & 1) != 0; }

  /// Value of bit `i` (0 = LSB). Precondition: i < 256.
  [[nodiscard]] constexpr unsigned bit(unsigned i) const {
    return static_cast<unsigned>((w[i / 64] >> (i % 64)) & 1);
  }

  /// Index of the highest set bit plus one; 0 for zero.
  [[nodiscard]] unsigned bit_length() const;

  bool operator==(const U256&) const = default;
};

/// Three-way compare: -1, 0, +1. (Inline: this sits under every modular
/// reduction on the scalar-multiplication hot path.)
inline int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    const auto ai = a.w[static_cast<std::size_t>(i)];
    const auto bi = b.w[static_cast<std::size_t>(i)];
    if (ai != bi) return ai < bi ? -1 : 1;
  }
  return 0;
}
inline bool operator<(const U256& a, const U256& b) { return cmp(a, b) < 0; }
inline bool operator>(const U256& a, const U256& b) { return cmp(a, b) > 0; }
inline bool operator<=(const U256& a, const U256& b) { return cmp(a, b) <= 0; }
inline bool operator>=(const U256& a, const U256& b) { return cmp(a, b) >= 0; }

/// out = a + b; returns the carry-out (0 or 1). Inline for the hot path.
inline std::uint64_t add(U256& out, const U256& a, const U256& b) {
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 s = static_cast<unsigned __int128>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

/// out = a - b; returns the borrow-out (0 or 1). Inline for the hot path.
inline std::uint64_t sub(U256& out, const U256& a, const U256& b) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 d = static_cast<unsigned __int128>(a.w[i]) - b.w[i] - borrow;
    out.w[i] = static_cast<std::uint64_t>(d);
    borrow = static_cast<std::uint64_t>((d >> 64) & 1);
  }
  return borrow;
}

/// Full 256x256 -> 512-bit product, little-endian 8 limbs.
struct U512 {
  std::array<std::uint64_t, 8> w{};
  [[nodiscard]] bool is_zero() const;
  bool operator==(const U512&) const = default;
};
U512 mul_wide(const U256& a, const U256& b);

/// Logical shifts by one bit (used by ladder-style loops and reduction).
inline U256 shl1(const U256& a) {  // discards the top bit
  U256 r;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    r.w[i] = (a.w[i] << 1) | carry;
    carry = a.w[i] >> 63;
  }
  return r;
}
inline U256 shr1(const U256& a) {
  U256 r;
  std::uint64_t carry = 0;
  for (int i = 3; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    r.w[idx] = (a.w[idx] >> 1) | (carry << 63);
    carry = a.w[idx] & 1;
  }
  return r;
}

/// Constant-time conditional select: returns (flag ? a : b); flag in {0,1}.
inline U256 ct_select(std::uint64_t flag, const U256& a, const U256& b) {
  // mask is all-ones when flag==1; branchless limb blend.
  const std::uint64_t mask = 0 - flag;
  U256 r;
  for (std::size_t i = 0; i < 4; ++i) r.w[i] = (a.w[i] & mask) | (b.w[i] & ~mask);
  return r;
}

/// Constant-time conditional swap of a and b when flag == 1.
inline void ct_swap(std::uint64_t flag, U256& a, U256& b) {
  const std::uint64_t mask = 0 - flag;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t t = mask & (a.w[i] ^ b.w[i]);
    a.w[i] ^= t;
    b.w[i] ^= t;
  }
}

/// Big-endian 32-byte (de)serialization used by all wire formats (SEC1).
U256 from_be_bytes(ByteView bytes);  // requires bytes.size() == 32
void to_be_bytes(const U256& a, ByteSpan out);  // requires out.size() >= 32
Bytes to_be_bytes(const U256& a);

/// Hex helpers for test vectors and debugging. from_hex accepts up to
/// 64 digits (shorter input is zero-extended on the left).
U256 from_hex256(std::string_view hex);
std::string to_hex(const U256& a);

}  // namespace ecqv::bi
