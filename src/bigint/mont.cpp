#include "bigint/mont.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ecqv::bi {

using u128 = unsigned __int128;

namespace {

// -m^-1 mod 2^64 by Newton iteration on the word inverse.
std::uint64_t neg_inv64(std::uint64_t m0) {
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;  // inv = m0^-1 mod 2^64
  return ~inv + 1;                                  // -inv
}

// Generic Montgomery reduction of a 512-bit product: four CIOS-style
// m-steps with 64x64 multiplies, then a branchless conditional subtract.
U256 redc_generic(const p256::Wide& w, const U256& m, std::uint64_t n0) {
  std::uint64_t t0 = w.w0, t1 = w.w1, t2 = w.w2, t3 = w.w3;
  std::uint64_t g = 0;
  const std::uint64_t inj[4] = {w.w4, w.w5, w.w6, w.w7};
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t mfac = t0 * n0;
    u128 cur = static_cast<u128>(mfac) * m.w[0] + t0;  // low limb folds to 0
    std::uint64_t c = static_cast<std::uint64_t>(cur >> 64);
    cur = static_cast<u128>(mfac) * m.w[1] + t1 + c;
    t0 = static_cast<std::uint64_t>(cur);
    c = static_cast<std::uint64_t>(cur >> 64);
    cur = static_cast<u128>(mfac) * m.w[2] + t2 + c;
    t1 = static_cast<std::uint64_t>(cur);
    c = static_cast<std::uint64_t>(cur >> 64);
    cur = static_cast<u128>(mfac) * m.w[3] + t3 + c;
    t2 = static_cast<std::uint64_t>(cur);
    c = static_cast<std::uint64_t>(cur >> 64);
    cur = static_cast<u128>(inj[i]) + c + g;
    t3 = static_cast<std::uint64_t>(cur);
    g = static_cast<std::uint64_t>(cur >> 64);
  }
  U256 r{t0, t1, t2, t3};
  U256 d;
  const std::uint64_t borrow = bi::sub(d, r, m);
  return ct_select(g | (borrow ^ 1), d, r);
}

// (x + m) >> 1 over 257 bits (helper for the binary extended gcd).
U256 add_shr1(const U256& x, const U256& m) {
  U256 t;
  const std::uint64_t carry = bi::add(t, x, m);
  U256 r = shr1(t);
  r.w[3] |= carry << 63;
  return r;
}

}  // namespace

bool mont_asm_available() {
#if defined(ECQV_P256_ASM)
  if (const char* env = std::getenv("ECQV_DISABLE_ASM"); env != nullptr && env[0] != '\0' &&
                                                         !(env[0] == '0' && env[1] == '\0'))
    return false;
  return __builtin_cpu_supports("bmi2") != 0 && __builtin_cpu_supports("adx") != 0;
#else
  return false;
#endif
}

namespace p256 {
U256 mont_mul(const U256& a, const U256& b) { return redc(mul4_wide(a, b)); }
U256 mont_sqr(const U256& a) { return redc(sqr4_wide(a)); }
}  // namespace p256

MontCtx::MontCtx(const U256& modulus) : m_(modulus) {
  if (!modulus.is_odd()) throw std::invalid_argument("MontCtx: modulus must be odd");
  if (modulus.bit(255) == 0) throw std::invalid_argument("MontCtx: modulus must exceed 2^255");
  n0_ = neg_inv64(modulus.w[0]);
  is_p256_prime_ = (modulus == p256::kPrime);
#if defined(ECQV_P256_ASM)
  const bool asm_ok = mont_asm_available();
  use_asm_ = is_p256_prime_ && asm_ok;
  use_asm_any_ = !is_p256_prime_ && asm_ok;
#endif

  // R mod m and R^2 mod m by repeated modular doubling of 1: double 512
  // times for R^2 and capture R after 256 doublings.
  U256 acc(1);
  for (int i = 0; i < 512; ++i) {
    const std::uint64_t top = acc.bit(255);
    acc = shl1(acc);
    // acc may have dropped a top bit; value is acc + top*2^256. Reduce:
    // subtract m when the dropped bit is set (2^256 mod m = 2^256 - m since
    // m > 2^255 implies 2^256 < 2m) or when acc >= m.
    if (top != 0) {
      U256 t;
      bi::sub(t, acc, m_);
      acc = t;
    }
    if (cmp(acc, m_) >= 0) {
      U256 t;
      bi::sub(t, acc, m_);
      acc = t;
    }
    if (i == 255) one_ = acc;
  }
  r2_ = acc;
}

U256 MontCtx::mul_generic(const U256& a, const U256& b) const {
  return redc_generic(p256::mul4_wide(a, b), m_, n0_);
}

U256 MontCtx::sqr_generic(const U256& a) const {
  return redc_generic(p256::sqr4_wide(a), m_, n0_);
}

U256 MontCtx::pow(const U256& a_mont, const U256& e) const {
  U256 result = one_;
  for (int i = 255; i >= 0; --i) {
    result = sqr(result);
    if (e.bit(static_cast<unsigned>(i)) != 0) result = mul(result, a_mont);
  }
  return result;
}

// Fixed addition chain for a^(p-2) mod p, p the secp256r1 field prime.
//
// p - 2 reads, in 32-bit words high to low,
//   ffffffff 00000001 00000000 00000000 00000000 ffffffff ffffffff fffffffd
// The chain first builds a^(2^k - 1) for k = 2,4,8,16,32 by doubling runs,
// then assembles the exponent word by word: 255 squarings + 13 multiplies,
// vs 256 squarings + ~128 multiplies for the generic ladder. The operation
// sequence is fixed — independent of the input value.
U256 MontCtx::inv_p256_chain(const U256& a_mont) const {
  auto sqr_n = [this](U256 v, int n) {
    for (int i = 0; i < n; ++i) v = sqr(v);
    return v;
  };
  const U256 x2 = mul(sqr(a_mont), a_mont);   // 2^2 - 1
  const U256 x4 = mul(sqr_n(x2, 2), x2);      // 2^4 - 1
  const U256 x8 = mul(sqr_n(x4, 4), x4);      // 2^8 - 1
  const U256 x16 = mul(sqr_n(x8, 8), x8);     // 2^16 - 1
  const U256 x32 = mul(sqr_n(x16, 16), x16);  // 2^32 - 1

  U256 acc = x32;                        // ffffffff
  acc = mul(sqr_n(acc, 32), a_mont);     // .. 00000001
  acc = mul(sqr_n(acc, 128), x32);       // .. 00000000 00000000 00000000 ffffffff
  acc = mul(sqr_n(acc, 32), x32);        // .. ffffffff
  acc = mul(sqr_n(acc, 16), x16);        // low word: 16 ones
  acc = mul(sqr_n(acc, 8), x8);          //   + 8 ones
  acc = mul(sqr_n(acc, 4), x4);          //   + 4 ones
  acc = mul(sqr_n(acc, 2), x2);          //   + 2 ones  (30 ones total)
  acc = mul(sqr_n(acc, 2), a_mont);      //   + "01" -> fffffffd
  return acc;
}

U256 MontCtx::inv(const U256& a_mont) const {
  if (is_p256_prime_) return inv_p256_chain(a_mont);
  U256 e;
  bi::sub(e, m_, U256(2));  // m - 2
  return pow(a_mont, e);
}

// Binary extended gcd (HAC 14.61 simplified for odd prime modulus).
// Variable-time in the value of a — public inputs only.
U256 MontCtx::inv_vartime(const U256& a_mont) const {
  const U256 a = from_mont(a_mont);
  if (a.is_zero()) return U256(0);  // defensive; precondition is nonzero
  U256 u = a;
  U256 v = m_;
  U256 x1(1);
  U256 x2(0);
  const U256 one(1);
  while (!(u == one) && !(v == one)) {
    while (!u.is_odd()) {
      u = shr1(u);
      x1 = x1.is_odd() ? add_shr1(x1, m_) : shr1(x1);
    }
    while (!v.is_odd()) {
      v = shr1(v);
      x2 = x2.is_odd() ? add_shr1(x2, m_) : shr1(x2);
    }
    if (cmp(u, v) >= 0) {
      U256 t;
      bi::sub(t, u, v);
      u = t;
      x1 = sub(x1, x2);
    } else {
      U256 t;
      bi::sub(t, v, u);
      v = t;
      x2 = sub(x2, x1);
    }
  }
  return to_mont(u == one ? x1 : x2);
}

}  // namespace ecqv::bi
