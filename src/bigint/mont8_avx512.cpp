// AVX-512 IFMA kernel for the radix-2^52 8-way Montgomery lane.
//
// vpmadd52luq/vpmadd52huq multiply the low 52 bits of two 64-bit lanes and
// add the low/high 52 bits of the 104-bit product into a 64-bit
// accumulator. With ≤ 4 additions per accumulator per round and 5 rounds,
// columns peak below 2^57 — carries are swept exactly once, after the last
// round, instead of after every partial product like a 64-bit carry chain.
// That is the whole trick: one multiplication round is ten data-parallel
// vpmadd52 pairs with no flag dependencies at all.
//
// This translation unit is the only one that emits AVX-512 instructions;
// the target attribute keeps the rest of the build portable, and
// mont52.cpp only calls in here after __builtin_cpu_supports checks at run
// time (plus the ECQV_DISABLE_IFMA kill switch).
#include "bigint/mont52.hpp"

#if defined(ECQV_MONT8_IFMA)

#include <immintrin.h>

namespace ecqv::bi::detail {

__attribute__((target("avx512f,avx512ifma"))) void mont8_mul_ifma(Fe52x8& out, const Fe52x8& a,
                                                                  const Fe52x8& b,
                                                                  const Mont52Ctx& ctx) {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kFe52Mask));
  const __m512i n0 = _mm512_set1_epi64(static_cast<long long>(ctx.n0));
  __m512i M[kFe52Limbs];
  __m512i B[kFe52Limbs];
  for (int j = 0; j < kFe52Limbs; ++j) {
    M[j] = _mm512_set1_epi64(static_cast<long long>(ctx.m[j]));
    B[j] = _mm512_load_si512(b.l[j]);
  }
  __m512i t0 = zero, t1 = zero, t2 = zero, t3 = zero, t4 = zero, t5 = zero;
  for (int i = 0; i < kFe52Limbs; ++i) {
    const __m512i ai = _mm512_load_si512(a.l[i]);
    t0 = _mm512_madd52lo_epu64(t0, ai, B[0]);
    t1 = _mm512_madd52lo_epu64(t1, ai, B[1]);
    t2 = _mm512_madd52lo_epu64(t2, ai, B[2]);
    t3 = _mm512_madd52lo_epu64(t3, ai, B[3]);
    t4 = _mm512_madd52lo_epu64(t4, ai, B[4]);
    t1 = _mm512_madd52hi_epu64(t1, ai, B[0]);
    t2 = _mm512_madd52hi_epu64(t2, ai, B[1]);
    t3 = _mm512_madd52hi_epu64(t3, ai, B[2]);
    t4 = _mm512_madd52hi_epu64(t4, ai, B[3]);
    t5 = _mm512_madd52hi_epu64(t5, ai, B[4]);
    // m-step: mf = (t0 * n0) mod 2^52 (vpmadd52luq reads only low 52 bits
    // of each source, which is exactly the mod-2^52 product we need).
    const __m512i mf = _mm512_madd52lo_epu64(zero, t0, n0);
    t0 = _mm512_madd52lo_epu64(t0, mf, M[0]);
    t1 = _mm512_madd52lo_epu64(t1, mf, M[1]);
    t2 = _mm512_madd52lo_epu64(t2, mf, M[2]);
    t3 = _mm512_madd52lo_epu64(t3, mf, M[3]);
    t4 = _mm512_madd52lo_epu64(t4, mf, M[4]);
    t1 = _mm512_madd52hi_epu64(t1, mf, M[0]);
    t2 = _mm512_madd52hi_epu64(t2, mf, M[1]);
    t3 = _mm512_madd52hi_epu64(t3, mf, M[2]);
    t4 = _mm512_madd52hi_epu64(t4, mf, M[3]);
    t5 = _mm512_madd52hi_epu64(t5, mf, M[4]);
    // Low column is ≡ 0 mod 2^52; fold its carry and shift the window.
    t1 = _mm512_add_epi64(t1, _mm512_srli_epi64(t0, 52));
    t0 = t1;
    t1 = t2;
    t2 = t3;
    t3 = t4;
    t4 = t5;
    t5 = zero;
  }
  // One carry sweep (result < 2m < 2^257 fits five 52-bit limbs) ...
  t1 = _mm512_add_epi64(t1, _mm512_srli_epi64(t0, 52));
  t0 = _mm512_and_si512(t0, mask);
  t2 = _mm512_add_epi64(t2, _mm512_srli_epi64(t1, 52));
  t1 = _mm512_and_si512(t1, mask);
  t3 = _mm512_add_epi64(t3, _mm512_srli_epi64(t2, 52));
  t2 = _mm512_and_si512(t2, mask);
  t4 = _mm512_add_epi64(t4, _mm512_srli_epi64(t3, 52));
  t3 = _mm512_and_si512(t3, mask);
  // ... then a branchless conditional subtract of m per lane.
  __m512i T[kFe52Limbs] = {t0, t1, t2, t3, t4};
  __m512i D[kFe52Limbs];
  __m512i borrow = zero;
  for (int j = 0; j < kFe52Limbs; ++j) {
    const __m512i v = _mm512_sub_epi64(_mm512_sub_epi64(T[j], M[j]), borrow);
    borrow = _mm512_srli_epi64(v, 63);  // sign bit: this column borrowed
    D[j] = _mm512_and_si512(v, mask);
  }
  // Lanes with no final borrow satisfy t >= m: take the subtracted value.
  const __mmask8 ge = _mm512_cmpeq_epu64_mask(borrow, zero);
  for (int j = 0; j < kFe52Limbs; ++j)
    _mm512_store_si512(out.l[j], _mm512_mask_blend_epi64(ge, T[j], D[j]));
}

}  // namespace ecqv::bi::detail

#endif  // ECQV_MONT8_IFMA
