#include "bigint/mont_ref.hpp"

#include <stdexcept>

namespace ecqv::bi {

using u128 = unsigned __int128;

namespace {

// -m^-1 mod 2^64 by Newton iteration on the word inverse.
std::uint64_t neg_inv64(std::uint64_t m0) {
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;  // inv = m0^-1 mod 2^64
  return ~inv + 1;                                  // -inv
}

}  // namespace

RefMontCtx::RefMontCtx(const U256& modulus) : m_(modulus) {
  if (!modulus.is_odd()) throw std::invalid_argument("RefMontCtx: modulus must be odd");
  if (modulus.bit(255) == 0) throw std::invalid_argument("RefMontCtx: modulus must exceed 2^255");
  n0_ = neg_inv64(modulus.w[0]);

  // R mod m and R^2 mod m by repeated modular doubling of 1: double 512
  // times for R^2 and capture R after 256 doublings.
  U256 acc(1);
  for (int i = 0; i < 512; ++i) {
    const std::uint64_t top = acc.bit(255);
    acc = shl1(acc);
    // acc may have dropped a top bit; value is acc + top*2^256. Reduce:
    // subtract m when the dropped bit is set (2^256 mod m = 2^256 - m since
    // m > 2^255 implies 2^256 < 2m) or when acc >= m.
    if (top != 0) {
      U256 t;
      ::ecqv::bi::sub(t, acc, m_);
      acc = t;
    }
    if (cmp(acc, m_) >= 0) {
      U256 t;
      ::ecqv::bi::sub(t, acc, m_);
      acc = t;
    }
    if (i == 255) one_ = acc;
  }
  r2_ = acc;
}

U256 RefMontCtx::mul(const U256& a, const U256& b) const {
  // CIOS Montgomery multiplication, 4 limbs + 2 guard words.
  std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[4]) + carry;
      t[4] = static_cast<std::uint64_t>(cur);
      t[5] = static_cast<std::uint64_t>(cur >> 64);
    }
    // m-step: fold out the low limb.
    const std::uint64_t mfac = t[0] * n0_;
    carry = 0;
    {
      const u128 cur = static_cast<u128>(mfac) * m_.w[0] + t[0];
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    for (std::size_t j = 1; j < 4; ++j) {
      const u128 cur = static_cast<u128>(mfac) * m_.w[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[4]) + carry;
      t[3] = static_cast<std::uint64_t>(cur);
      t[4] = t[5] + static_cast<std::uint64_t>(cur >> 64);
      t[5] = 0;
    }
  }
  U256 r{t[0], t[1], t[2], t[3]};
  // At most one final subtraction needed (result < 2m).
  if (t[4] != 0 || cmp(r, m_) >= 0) {
    U256 d;
    ::ecqv::bi::sub(d, r, m_);
    r = d;
  }
  return r;
}

U256 RefMontCtx::add(const U256& a, const U256& b) const {
  U256 s;
  const std::uint64_t carry = ::ecqv::bi::add(s, a, b);
  if (carry != 0 || cmp(s, m_) >= 0) {
    U256 d;
    ::ecqv::bi::sub(d, s, m_);
    return d;
  }
  return s;
}

U256 RefMontCtx::sub(const U256& a, const U256& b) const {
  U256 d;
  const std::uint64_t borrow = ::ecqv::bi::sub(d, a, b);
  if (borrow != 0) {
    U256 s;
    ::ecqv::bi::add(s, d, m_);
    return s;
  }
  return d;
}

U256 RefMontCtx::pow(const U256& a_mont, const U256& e) const {
  U256 result = one_;
  for (int i = 255; i >= 0; --i) {
    result = sqr(result);
    if (e.bit(static_cast<unsigned>(i)) != 0) result = mul(result, a_mont);
  }
  return result;
}

U256 RefMontCtx::inv(const U256& a_mont) const {
  U256 e;
  ::ecqv::bi::sub(e, m_, U256(2));  // m - 2
  return pow(a_mont, e);
}

}  // namespace ecqv::bi
