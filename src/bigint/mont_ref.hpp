// Reference (generic, loop-based) Montgomery arithmetic — the property-test
// oracle for the specialized fast path in mont.cpp.
//
// This is the original pedagogical implementation: CIOS multiplication with
// dynamic loops, squaring via mul(a, a), and inversion via a generic
// 256-iteration Fermat ladder. It is deliberately kept simple and is NOT on
// any hot path; tests/test_mont_fastpath.cpp cross-checks MontCtx against it
// on tens of thousands of random inputs so the unrolled/addition-chain code
// can never silently drift from the textbook semantics.
#pragma once

#include "bigint/u256.hpp"

namespace ecqv::bi {

class RefMontCtx {
 public:
  /// Constructs the context for an odd modulus > 2^255 (both secp256r1
  /// moduli qualify; the reduce() shortcut relies on this bound).
  explicit RefMontCtx(const U256& modulus);

  [[nodiscard]] const U256& modulus() const { return m_; }
  /// 1 in Montgomery form (i.e. R mod m).
  [[nodiscard]] const U256& one() const { return one_; }

  /// a * b * R^-1 mod m; inputs/outputs in Montgomery form.
  [[nodiscard]] U256 mul(const U256& a, const U256& b) const;
  [[nodiscard]] U256 sqr(const U256& a) const { return mul(a, a); }

  /// Domain conversions.
  [[nodiscard]] U256 to_mont(const U256& a) const { return mul(a, r2_); }
  [[nodiscard]] U256 from_mont(const U256& a) const { return mul(a, U256(1)); }

  /// Modular add/sub (domain-agnostic: valid for plain or Montgomery form).
  [[nodiscard]] U256 add(const U256& a, const U256& b) const;
  [[nodiscard]] U256 sub(const U256& a, const U256& b) const;

  /// a^e mod m with a in Montgomery form; result in Montgomery form.
  [[nodiscard]] U256 pow(const U256& a_mont, const U256& e) const;

  /// Multiplicative inverse via Fermat (modulus must be prime); Montgomery
  /// form in and out. Precondition: a_mont represents a nonzero residue.
  [[nodiscard]] U256 inv(const U256& a_mont) const;

 private:
  U256 m_;
  U256 r2_;    // R^2 mod m, R = 2^256
  U256 one_;   // R mod m
  std::uint64_t n0_;  // -m^-1 mod 2^64
};

}  // namespace ecqv::bi
