// Montgomery-domain modular arithmetic over an odd 256-bit modulus.
//
// One MontCtx instance exists per modulus (the secp256r1 field prime p and
// the group order n). Multiplication uses the CIOS method with 64x64->128
// multiply-accumulate; addition/subtraction work identically in and out of
// the Montgomery domain, so the same helpers serve both.
//
// Variable-time notes: pow() scans exponent bits high-to-low and is
// variable-time in the exponent *length* but uses a fixed 256-iteration
// window internally, so exponentiations with secret exponents (inversion via
// Fermat) do not leak the exponent hamming weight through the multiply
// schedule. See README "Security scope".
#pragma once

#include "bigint/u256.hpp"

namespace ecqv::bi {

class MontCtx {
 public:
  /// Constructs the context for an odd modulus > 2^255 (both secp256r1
  /// moduli qualify; the reduce() shortcut relies on this bound).
  explicit MontCtx(const U256& modulus);

  [[nodiscard]] const U256& modulus() const { return m_; }
  /// 1 in Montgomery form (i.e. R mod m).
  [[nodiscard]] const U256& one() const { return one_; }

  /// a * b * R^-1 mod m; inputs/outputs in Montgomery form.
  [[nodiscard]] U256 mul(const U256& a, const U256& b) const;
  [[nodiscard]] U256 sqr(const U256& a) const { return mul(a, a); }

  /// Domain conversions.
  [[nodiscard]] U256 to_mont(const U256& a) const { return mul(a, r2_); }
  [[nodiscard]] U256 from_mont(const U256& a) const { return mul(a, U256(1)); }

  /// Modular add/sub (domain-agnostic: valid for plain or Montgomery form).
  [[nodiscard]] U256 add(const U256& a, const U256& b) const;
  [[nodiscard]] U256 sub(const U256& a, const U256& b) const;

  /// Reduces any 256-bit value modulo m using a single conditional subtract
  /// (valid because m > 2^255 implies a < 2m for all 256-bit a).
  [[nodiscard]] U256 reduce(const U256& a) const;

  /// a^e mod m with a in Montgomery form; result in Montgomery form.
  [[nodiscard]] U256 pow(const U256& a_mont, const U256& e) const;

  /// Multiplicative inverse via Fermat (modulus must be prime); Montgomery
  /// form in and out. Precondition: a_mont represents a nonzero residue.
  [[nodiscard]] U256 inv(const U256& a_mont) const;

  /// Convenience: plain-domain modular multiplication (converts in/out).
  [[nodiscard]] U256 mul_plain(const U256& a, const U256& b) const {
    return from_mont(mul(to_mont(a), to_mont(b)));
  }

 private:
  U256 m_;
  U256 r2_;    // R^2 mod m, R = 2^256
  U256 one_;   // R mod m
  std::uint64_t n0_;  // -m^-1 mod 2^64
};

}  // namespace ecqv::bi
