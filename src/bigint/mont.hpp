// Montgomery-domain modular arithmetic over an odd 256-bit modulus.
//
// One MontCtx instance exists per modulus (the secp256r1 field prime p and
// the group order n). This is the library's fast path, so the hot
// operations are defined inline in this header:
//
//  * mul(): for the P-256 field prime, a fully unrolled two-pass routine —
//    a 4x4 Comba product with all 16 limb products independent (so they
//    pipeline), followed by a Montgomery reduction that is multiplication-
//    free: -p^-1 mod 2^64 == 1 for the P-256 prime and p's limbs are
//    0xffffffffffffffff / 0xffffffff / 0 / 0xffffffff00000001, so every
//    m*p partial product folds into shifts and adds. Other moduli (the
//    group order n) take the generic unrolled CIOS path in mont.cpp.
//  * sqr(): dedicated squaring — each cross product computed once and
//    doubled in-column: 10 limb products instead of 16.
//  * add()/sub(): branchless (compute both candidates, mask-select); the
//    carry/overflow condition is data-dependent ~50% of the time, so a
//    branch would mispredict constantly on the scalar-multiplication path.
//  * inv(): for the P-256 prime, a fixed 255-squaring/13-multiply addition
//    chain replaces the generic 256-iteration Fermat ladder.
//  * inv_vartime(): binary extended-gcd inverse for PUBLIC values only
//    (signature verification, table normalization) — several times faster
//    than any Fermat route but value-dependent in its branching.
//
// tests/test_mont_fastpath.cpp pins every operation bit-exactly to the
// generic reference implementation in mont_ref.hpp on tens of thousands of
// random inputs.
//
// Variable-time notes: pow() scans exponent bits high-to-low and is
// variable-time in the exponent *length* but uses a fixed 256-iteration
// window internally, so exponentiations with secret exponents do not leak
// the exponent hamming weight through the multiply schedule. The addition-
// chain inversion is a fixed operation sequence independent of the input
// value. inv_vartime() is variable-time by design; callers must only pass
// public values. See README "Security scope".
//
// Cost accounting: mul() and sqr() bump Op::kFpMul / Op::kFpSqr so protocol
// runs can report exact field-operation counts per scalar multiplication
// (count_op is an inline TLS check, so this costs ~1 ns per operation).
#pragma once

#include "bigint/u256.hpp"
#include "common/metrics.hpp"

// Hand-scheduled BMI2/ADX kernels for the P-256 prime (p256_asm.cpp).
// Compile-time gate; MontCtx additionally checks CPU support at run time.
#if defined(__x86_64__) && defined(__ELF__) && !defined(ECQV_NO_ASM)
#define ECQV_P256_ASM 1
extern "C" {
// The access attributes tell GCC these only touch memory through their
// pointer arguments, so calls don't act as full memory barriers when
// scheduling the surrounding point-formula code.
__attribute__((access(write_only, 1), access(read_only, 2), access(read_only, 3))) void
ecqv_p256_mul_mont(std::uint64_t out[4], const std::uint64_t a[4], const std::uint64_t b[4]);
__attribute__((access(write_only, 1), access(read_only, 2))) void ecqv_p256_sqr_mont(
    std::uint64_t out[4], const std::uint64_t a[4]);
// Paired variants: two INDEPENDENT operations per call, overlapped by the
// out-of-order core — near the throughput bound instead of 2x the latency.
// o1 must not alias the second operation's inputs.
__attribute__((access(write_only, 1), access(read_only, 2), access(read_only, 3),
               access(write_only, 4), access(read_only, 5), access(read_only, 6))) void
ecqv_p256_mul2_mont(std::uint64_t o1[4], const std::uint64_t a1[4], const std::uint64_t b1[4],
                    std::uint64_t o2[4], const std::uint64_t a2[4], const std::uint64_t b2[4]);
__attribute__((access(write_only, 1), access(read_only, 2), access(write_only, 3),
               access(read_only, 4))) void
ecqv_p256_sqr2_mont(std::uint64_t o1[4], const std::uint64_t a1[4], std::uint64_t o2[4],
                    const std::uint64_t a2[4]);
// Modulus-parameterized variant: same BMI2/ADX schedule but the Montgomery
// m-step multiplies against caller-supplied modulus limbs with
// n0 = -m^-1 mod 2^64. This is how mod-n (group order) contexts reach asm.
__attribute__((access(write_only, 1), access(read_only, 2), access(read_only, 3),
               access(read_only, 4))) void
ecqv_mont_mul_adx(std::uint64_t out[4], const std::uint64_t a[4], const std::uint64_t b[4],
                  const std::uint64_t m[4], std::uint64_t n0);
}
#endif

namespace ecqv::bi {

namespace p256 {

// secp256r1 field prime p = 2^256 - 2^224 + 2^192 + 2^96 - 1.
inline constexpr U256 kPrime{0xffffffffffffffffULL, 0x00000000ffffffffULL,
                             0x0000000000000000ULL, 0xffffffff00000001ULL};

using u128 = unsigned __int128;

struct Wide {
  std::uint64_t w0, w1, w2, w3, w4, w5, w6, w7;
};

// Fully unrolled 4x4 -> 8 limb Comba product. All 16 limb products are
// mutually independent, so the multiplier pipeline stays full while the
// column carry chains retire.
inline Wide mul4_wide(const U256& a, const U256& b) {
  Wide t;
  u128 carry;
  {
    const u128 p = static_cast<u128>(a.w[0]) * b.w[0];
    t.w0 = static_cast<std::uint64_t>(p);
    carry = p >> 64;
  }
  const auto col = [&carry](std::uint64_t& out, u128 lo, u128 hi) {
    out = static_cast<std::uint64_t>(lo);
    carry = hi + (lo >> 64);
  };
  const auto mac = [](u128& lo, u128& hi, std::uint64_t x, std::uint64_t y) {
    const u128 p = static_cast<u128>(x) * y;
    lo += static_cast<std::uint64_t>(p);
    hi += p >> 64;
  };
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac(lo, hi, a.w[0], b.w[1]);
    mac(lo, hi, a.w[1], b.w[0]);
    col(t.w1, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac(lo, hi, a.w[0], b.w[2]);
    mac(lo, hi, a.w[1], b.w[1]);
    mac(lo, hi, a.w[2], b.w[0]);
    col(t.w2, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac(lo, hi, a.w[0], b.w[3]);
    mac(lo, hi, a.w[1], b.w[2]);
    mac(lo, hi, a.w[2], b.w[1]);
    mac(lo, hi, a.w[3], b.w[0]);
    col(t.w3, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac(lo, hi, a.w[1], b.w[3]);
    mac(lo, hi, a.w[2], b.w[2]);
    mac(lo, hi, a.w[3], b.w[1]);
    col(t.w4, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac(lo, hi, a.w[2], b.w[3]);
    mac(lo, hi, a.w[3], b.w[2]);
    col(t.w5, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac(lo, hi, a.w[3], b.w[3]);
    col(t.w6, lo, hi);
  }
  t.w7 = static_cast<std::uint64_t>(carry);
  return t;
}

// Dedicated squaring: each cross product a[i]*a[j] (i < j) is computed once
// and doubled in its column — 10 limb products instead of 16.
inline Wide sqr4_wide(const U256& a) {
  Wide t;
  u128 carry;
  {
    const u128 p = static_cast<u128>(a.w[0]) * a.w[0];
    t.w0 = static_cast<std::uint64_t>(p);
    carry = p >> 64;
  }
  const auto col = [&carry](std::uint64_t& out, u128 lo, u128 hi) {
    out = static_cast<std::uint64_t>(lo);
    carry = hi + (lo >> 64);
  };
  const auto mac = [](u128& lo, u128& hi, std::uint64_t x, std::uint64_t y) {
    const u128 p = static_cast<u128>(x) * y;
    lo += static_cast<std::uint64_t>(p);
    hi += p >> 64;
  };
  const auto mac2 = [](u128& lo, u128& hi, std::uint64_t x, std::uint64_t y) {
    const u128 p = static_cast<u128>(x) * y;
    const std::uint64_t pl = static_cast<std::uint64_t>(p);
    const std::uint64_t ph = static_cast<std::uint64_t>(p >> 64);
    lo += pl;
    lo += pl;
    hi += ph;
    hi += ph;
  };
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac2(lo, hi, a.w[0], a.w[1]);
    col(t.w1, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac2(lo, hi, a.w[0], a.w[2]);
    mac(lo, hi, a.w[1], a.w[1]);
    col(t.w2, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac2(lo, hi, a.w[0], a.w[3]);
    mac2(lo, hi, a.w[1], a.w[2]);
    col(t.w3, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac2(lo, hi, a.w[1], a.w[3]);
    mac(lo, hi, a.w[2], a.w[2]);
    col(t.w4, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac2(lo, hi, a.w[2], a.w[3]);
    col(t.w5, lo, hi);
  }
  {
    u128 lo = static_cast<std::uint64_t>(carry), hi = carry >> 64;
    mac(lo, hi, a.w[3], a.w[3]);
    col(t.w6, lo, hi);
  }
  t.w7 = static_cast<std::uint64_t>(carry);
  return t;
}

// Montgomery reduction specialized to the P-256 prime. Four CIOS-style
// rounds; because -p^-1 mod 2^64 == 1 the m factor IS the low limb, and
// because p = 2^256 - 2^224 + 2^192 + 2^96 - 1 each m*p partial product is
// a shift/add combination:
//   limb 0: m*(2^64-1) + t0 = m<<64            (t0 == m)  -> carry m
//   limb 1: m*(2^32-1) + t1 + m = (m<<32) + t1
//   limb 2: 0 + t2 + carry
//   limb 3: m*(2^64 - 2^32 + 1) + t3 + carry
// The final conditional subtraction is branchless: the result is >= p about
// half the time for random inputs, so a branch would mispredict constantly.
inline U256 redc(const Wide& w) {
  std::uint64_t t0 = w.w0, t1 = w.w1, t2 = w.w2, t3 = w.w3;
  std::uint64_t g = 0;  // guard: carry beyond the active window
  const std::uint64_t inj[4] = {w.w4, w.w5, w.w6, w.w7};
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t m = t0;
    u128 cur = (static_cast<u128>(m) << 32) + t1;
    t0 = static_cast<std::uint64_t>(cur);
    std::uint64_t c = static_cast<std::uint64_t>(cur >> 64);
    cur = static_cast<u128>(t2) + c;
    t1 = static_cast<std::uint64_t>(cur);
    c = static_cast<std::uint64_t>(cur >> 64);
    cur = (static_cast<u128>(m) << 64) - (static_cast<u128>(m) << 32) + m + t3 + c;
    t2 = static_cast<std::uint64_t>(cur);
    c = static_cast<std::uint64_t>(cur >> 64);
    cur = static_cast<u128>(inj[i]) + c + g;
    t3 = static_cast<std::uint64_t>(cur);
    g = static_cast<std::uint64_t>(cur >> 64);
  }
  U256 r{t0, t1, t2, t3};
  U256 d;
  const std::uint64_t borrow = bi::sub(d, r, kPrime);
  return ct_select(g | (borrow ^ 1), d, r);
}

/// a * b * R^-1 mod p; inputs/outputs in Montgomery form. Deliberately
/// out-of-line (mont.cpp): inlining the ~150-instruction body into the
/// point formulas bloats them past what the register allocator and L1i
/// handle well — measured slower than paying the call.
[[nodiscard]] U256 mont_mul(const U256& a, const U256& b);

/// a^2 * R^-1 mod p.
[[nodiscard]] U256 mont_sqr(const U256& a);

#if defined(__x86_64__) && !defined(ECQV_NO_ASM)
#define ECQV_P256_ADDSUB_ASM 1

/// a + b mod p, branchless (base x86-64 ISA only — no feature check
/// needed). The generic C version compiles to ~40 instructions under GCC;
/// this is 22, and the point formulas run ~15 modular adds per doubling.
inline U256 mod_add(const U256& a, const U256& b) {
  U256 s = a;
  U256 d;
  std::uint64_t c, m;
  asm("addq %[b0], %[s0]\n\t"
      "adcq %[b1], %[s1]\n\t"
      "adcq %[b2], %[s2]\n\t"
      "adcq %[b3], %[s3]\n\t"
      "sbbq %[c], %[c]\n\t"    // c = -carry
      "movq %[s0], %[d0]\n\t"
      "movq %[s1], %[d1]\n\t"
      "movq %[s2], %[d2]\n\t"
      "movq %[s3], %[d3]\n\t"
      "subq $-1, %[d0]\n\t"    // d = s - p
      "sbbq %[p1], %[d1]\n\t"
      "sbbq $0, %[d2]\n\t"
      "sbbq %[p3], %[d3]\n\t"
      "sbbq %[m], %[m]\n\t"    // m = -borrow
      "notq %[c]\n\t"
      "andq %[m], %[c]\n\t"    // keep s iff no carry AND borrow
      "testq %[c], %[c]\n\t"
      "cmovneq %[s0], %[d0]\n\t"
      "cmovneq %[s1], %[d1]\n\t"
      "cmovneq %[s2], %[d2]\n\t"
      "cmovneq %[s3], %[d3]\n\t"
      : [s0] "+&r"(s.w[0]), [s1] "+&r"(s.w[1]), [s2] "+&r"(s.w[2]), [s3] "+&r"(s.w[3]),
        [d0] "=&r"(d.w[0]), [d1] "=&r"(d.w[1]), [d2] "=&r"(d.w[2]), [d3] "=&r"(d.w[3]),
        [c] "=&r"(c), [m] "=&r"(m)
      : [b0] "rm"(b.w[0]), [b1] "rm"(b.w[1]), [b2] "rm"(b.w[2]), [b3] "rm"(b.w[3]),
        [p1] "r"(kPrime.w[1]), [p3] "r"(kPrime.w[3])
      : "cc");
  return d;
}

/// a - b mod p, branchless.
inline U256 mod_sub(const U256& a, const U256& b) {
  U256 d = a;
  U256 s;
  std::uint64_t m;
  asm("subq %[b0], %[d0]\n\t"
      "sbbq %[b1], %[d1]\n\t"
      "sbbq %[b2], %[d2]\n\t"
      "sbbq %[b3], %[d3]\n\t"
      "sbbq %[m], %[m]\n\t"    // m = -borrow; add p back iff borrow
      "movq %[d0], %[s0]\n\t"
      "movq %[d1], %[s1]\n\t"
      "movq %[d2], %[s2]\n\t"
      "movq %[d3], %[s3]\n\t"
      "addq $-1, %[s0]\n\t"    // s = d + p
      "adcq %[p1], %[s1]\n\t"
      "adcq $0, %[s2]\n\t"
      "adcq %[p3], %[s3]\n\t"
      "testq %[m], %[m]\n\t"
      "cmovneq %[s0], %[d0]\n\t"
      "cmovneq %[s1], %[d1]\n\t"
      "cmovneq %[s2], %[d2]\n\t"
      "cmovneq %[s3], %[d3]\n\t"
      : [d0] "+&r"(d.w[0]), [d1] "+&r"(d.w[1]), [d2] "+&r"(d.w[2]), [d3] "+&r"(d.w[3]),
        [s0] "=&r"(s.w[0]), [s1] "=&r"(s.w[1]), [s2] "=&r"(s.w[2]), [s3] "=&r"(s.w[3]),
        [m] "=&r"(m)
      : [b0] "rm"(b.w[0]), [b1] "rm"(b.w[1]), [b2] "rm"(b.w[2]), [b3] "rm"(b.w[3]),
        [p1] "r"(kPrime.w[1]), [p3] "r"(kPrime.w[3])
      : "cc");
  return d;
}
#endif  // x86-64

}  // namespace p256

class MontCtx {
 public:
  /// Constructs the context for an odd modulus > 2^255 (both secp256r1
  /// moduli qualify; the reduce() shortcut relies on this bound).
  explicit MontCtx(const U256& modulus);

  [[nodiscard]] const U256& modulus() const { return m_; }
  /// 1 in Montgomery form (i.e. R mod m).
  [[nodiscard]] const U256& one() const { return one_; }

  /// a * b * R^-1 mod m; inputs/outputs in Montgomery form.
  [[nodiscard]] U256 mul(const U256& a, const U256& b) const {
    count_op(Op::kFpMul);
    return mul_raw(a, b);
  }

  /// a^2 * R^-1 mod m; dedicated squaring (cheaper than mul(a, a)).
  [[nodiscard]] U256 sqr(const U256& a) const {
    count_op(Op::kFpSqr);
    return sqr_raw(a);
  }

  /// Uncounted variants for the elliptic-curve engine, which accounts for
  /// field operations in bulk per point formula (one count_op per formula
  /// instead of one TLS round-trip per field multiplication).
  [[nodiscard]] U256 mul_raw(const U256& a, const U256& b) const {
#if defined(ECQV_P256_ASM)
    if (use_asm_) {
      U256 r;
      ecqv_p256_mul_mont(r.w.data(), a.w.data(), b.w.data());
      return r;
    }
    if (use_asm_any_) {
      U256 r;
      ecqv_mont_mul_adx(r.w.data(), a.w.data(), b.w.data(), m_.w.data(), n0_);
      return r;
    }
#endif
    if (is_p256_prime_) return p256::mont_mul(a, b);
    return mul_generic(a, b);
  }
  [[nodiscard]] U256 sqr_raw(const U256& a) const {
#if defined(ECQV_P256_ASM)
    if (use_asm_) {
      U256 r;
      ecqv_p256_sqr_mont(r.w.data(), a.w.data());
      return r;
    }
    if (use_asm_any_) {
      // No dedicated generic asm squaring: mul(a, a) on the ADX kernel still
      // beats the portable sqr4_wide + CIOS route by ~2x.
      U256 r;
      ecqv_mont_mul_adx(r.w.data(), a.w.data(), a.w.data(), m_.w.data(), n0_);
      return r;
    }
#endif
    if (is_p256_prime_) return p256::mont_sqr(a);
    return sqr_generic(a);
  }

  /// Two INDEPENDENT raw multiplications in one call. On the asm path the
  /// bodies overlap in the out-of-order window (near-throughput cost for
  /// both); otherwise they run sequentially. o1 must not alias a2/b2.
  void mul2_raw(U256& o1, const U256& a1, const U256& b1, U256& o2, const U256& a2,
                const U256& b2) const {
#if defined(ECQV_P256_ASM)
    if (use_asm_) {
      ecqv_p256_mul2_mont(o1.w.data(), a1.w.data(), b1.w.data(), o2.w.data(), a2.w.data(),
                          b2.w.data());
      return;
    }
#endif
    o1 = mul_raw(a1, b1);
    o2 = mul_raw(a2, b2);
  }

  /// Two INDEPENDENT raw squarings in one call. o1 must not alias a2.
  void sqr2_raw(U256& o1, const U256& a1, U256& o2, const U256& a2) const {
#if defined(ECQV_P256_ASM)
    if (use_asm_) {
      ecqv_p256_sqr2_mont(o1.w.data(), a1.w.data(), o2.w.data(), a2.w.data());
      return;
    }
#endif
    o1 = sqr_raw(a1);
    o2 = sqr_raw(a2);
  }

  /// Domain conversions.
  [[nodiscard]] U256 to_mont(const U256& a) const { return mul(a, r2_); }
  [[nodiscard]] U256 from_mont(const U256& a) const { return mul(a, U256(1)); }

  /// Modular add/sub (domain-agnostic: valid for plain or Montgomery form).
  /// Branchless: both candidates are computed and mask-selected. The P-256
  /// prime takes the 22-instruction inline-asm path on x86-64.
  [[nodiscard]] U256 add(const U256& a, const U256& b) const {
#if defined(ECQV_P256_ADDSUB_ASM)
    if (is_p256_prime_) return p256::mod_add(a, b);
#endif
    U256 s;
    const std::uint64_t carry = bi::add(s, a, b);
    U256 d;
    const std::uint64_t borrow = bi::sub(d, s, m_);
    return ct_select(carry | (borrow ^ 1), d, s);
  }
  [[nodiscard]] U256 sub(const U256& a, const U256& b) const {
#if defined(ECQV_P256_ADDSUB_ASM)
    if (is_p256_prime_) return p256::mod_sub(a, b);
#endif
    U256 d;
    const std::uint64_t borrow = bi::sub(d, a, b);
    U256 s;
    bi::add(s, d, m_);
    return ct_select(borrow, s, d);
  }

  /// Reduces any 256-bit value modulo m using a single conditional subtract
  /// (valid because m > 2^255 implies a < 2m for all 256-bit a).
  [[nodiscard]] U256 reduce(const U256& a) const {
    U256 d;
    const std::uint64_t borrow = bi::sub(d, a, m_);
    return ct_select(borrow ^ 1, d, a);
  }

  /// a^e mod m with a in Montgomery form; result in Montgomery form.
  [[nodiscard]] U256 pow(const U256& a_mont, const U256& e) const;

  /// Multiplicative inverse via Fermat (modulus must be prime); Montgomery
  /// form in and out. Uses the fixed P-256 addition chain when the modulus
  /// is the secp256r1 field prime, the generic ladder otherwise. Fixed
  /// operation schedule: safe for secret values.
  /// Precondition: a_mont represents a nonzero residue.
  [[nodiscard]] U256 inv(const U256& a_mont) const;

  /// Multiplicative inverse via binary extended gcd — several times faster
  /// than inv() but VARIABLE-TIME in the value: public inputs only
  /// (signature verification, precomputed-table normalization).
  /// Montgomery form in and out. Precondition: nonzero residue.
  [[nodiscard]] U256 inv_vartime(const U256& a_mont) const;

  /// Convenience: plain-domain modular multiplication (converts in/out).
  [[nodiscard]] U256 mul_plain(const U256& a, const U256& b) const {
    return from_mont(mul(to_mont(a), to_mont(b)));
  }

 private:
  [[nodiscard]] U256 mul_generic(const U256& a, const U256& b) const;
  [[nodiscard]] U256 sqr_generic(const U256& a) const;
  [[nodiscard]] U256 inv_p256_chain(const U256& a_mont) const;

  U256 m_;
  U256 r2_;    // R^2 mod m, R = 2^256
  U256 one_;   // R mod m
  std::uint64_t n0_;  // -m^-1 mod 2^64
  bool is_p256_prime_ = false;  // modulus == secp256r1 field prime p
  bool use_asm_ = false;        // p256 prime AND the CPU has BMI2+ADX
  bool use_asm_any_ = false;    // any other modulus, same CPU gate (mod n)
};

/// True when MontCtx instances built in this process dispatch to the
/// BMI2/ADX kernels: compile gate, CPU support, and the ECQV_DISABLE_ASM
/// environment kill switch (read once per construction, so tests can build
/// forced-portable contexts after setenv).
[[nodiscard]] bool mont_asm_available();

}  // namespace ecqv::bi
