// Radix-2^52 lane: context construction, the portable 8-wide fallback, and
// runtime dispatch to the AVX-512 IFMA kernel (mont8_avx512.cpp).
#include "bigint/mont52.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ecqv::bi {

namespace {

using u128 = unsigned __int128;

// -m^-1 mod 2^52 via the 2^64 word inverse (m odd).
std::uint64_t neg_inv52(std::uint64_t m0) {
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;  // m0^-1 mod 2^64
  return (~inv + 1) & kFe52Mask;
}

bool env_disables_ifma() {
  const char* env = std::getenv("ECQV_DISABLE_IFMA");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

void u256_to_fe52(std::uint64_t out[kFe52Limbs], const U256& a) {
  out[0] = a.w[0] & kFe52Mask;
  out[1] = ((a.w[0] >> 52) | (a.w[1] << 12)) & kFe52Mask;
  out[2] = ((a.w[1] >> 40) | (a.w[2] << 24)) & kFe52Mask;
  out[3] = ((a.w[2] >> 28) | (a.w[3] << 36)) & kFe52Mask;
  out[4] = a.w[3] >> 16;
}

U256 fe52_to_u256(const std::uint64_t in[kFe52Limbs]) {
  U256 r;
  r.w[0] = in[0] | (in[1] << 52);
  r.w[1] = (in[1] >> 12) | (in[2] << 40);
  r.w[2] = (in[2] >> 24) | (in[3] << 28);
  r.w[3] = (in[3] >> 36) | (in[4] << 16);
  return r;
}

Mont52Ctx::Mont52Ctx(const U256& mod) : modulus(mod) {
  if (!mod.is_odd()) throw std::invalid_argument("Mont52Ctx: modulus must be odd");
  if (mod.bit(255) == 0) throw std::invalid_argument("Mont52Ctx: modulus must exceed 2^255");
  u256_to_fe52(m, mod);
  n0 = neg_inv52(m[0]);
  // 2^256 mod m and 2^264 mod m by repeated modular doubling of 1 (same
  // shift-and-reduce loop the scalar MontCtx uses for R and R^2).
  U256 acc(1);
  U256 r256{};
  for (int i = 0; i < 264; ++i) {
    const std::uint64_t top = acc.bit(255);
    acc = shl1(acc);
    if (top != 0) {
      U256 t;
      bi::sub(t, acc, mod);
      acc = t;
    }
    if (cmp(acc, mod) >= 0) {
      U256 t;
      bi::sub(t, acc, mod);
      acc = t;
    }
    if (i == 255) r256 = acc;
  }
  u256_to_fe52(from_lane, r256);
  u256_to_fe52(to_lane, acc);
}

bool mont8_hw_available() {
#if defined(ECQV_MONT8_IFMA)
  static const bool ok = __builtin_cpu_supports("avx512f") != 0 &&
                         __builtin_cpu_supports("avx512ifma") != 0;
  return ok && !env_disables_ifma();
#else
  return false;
#endif
}

// The exact algorithm the IFMA kernel runs, one lane at a time on
// unsigned __int128: five interleaved-CIOS rounds where every partial
// product contributes its low 52 bits to column j and its high 52 bits to
// column j+1 (the vpmadd52 split), deferred carries, then one carry sweep
// and a conditional subtract. Bit-identical to the vector kernel.
void detail::mont8_mul_portable(Fe52x8& out, const Fe52x8& a, const Fe52x8& b,
                                const Mont52Ctx& ctx) {
  for (int lane = 0; lane < 8; ++lane) {
    std::uint64_t t[kFe52Limbs + 1] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < kFe52Limbs; ++i) {
      const std::uint64_t ai = a.l[i][lane];
      for (int j = 0; j < kFe52Limbs; ++j) {
        const u128 p = static_cast<u128>(ai) * b.l[j][lane];
        t[j] += static_cast<std::uint64_t>(p) & kFe52Mask;
        t[j + 1] += static_cast<std::uint64_t>(p >> 52);
      }
      const std::uint64_t mf = ((t[0] & kFe52Mask) * ctx.n0) & kFe52Mask;
      for (int j = 0; j < kFe52Limbs; ++j) {
        const u128 p = static_cast<u128>(mf) * ctx.m[j];
        t[j] += static_cast<std::uint64_t>(p) & kFe52Mask;
        t[j + 1] += static_cast<std::uint64_t>(p >> 52);
      }
      t[1] += t[0] >> 52;  // t[0] ≡ 0 mod 2^52 by construction of mf
      for (int j = 0; j < kFe52Limbs; ++j) t[j] = t[j + 1];
      t[kFe52Limbs] = 0;
    }
    // Carry sweep: the result is < 2m < 2^257, so it fits five limbs.
    for (int j = 0; j + 1 < kFe52Limbs; ++j) {
      t[j + 1] += t[j] >> 52;
      t[j] &= kFe52Mask;
    }
    // Conditional subtract of m (branchless select per lane).
    std::uint64_t d[kFe52Limbs];
    std::uint64_t borrow = 0;
    for (int j = 0; j < kFe52Limbs; ++j) {
      const std::uint64_t v = t[j] - ctx.m[j] - borrow;
      borrow = v >> 63;
      d[j] = v & kFe52Mask;
    }
    const std::uint64_t keep_t = static_cast<std::uint64_t>(0) - borrow;  // all-ones iff t < m
    for (int j = 0; j < kFe52Limbs; ++j)
      out.l[j][lane] = (t[j] & keep_t) | (d[j] & ~keep_t);
  }
}

void mont8_mul(Fe52x8& out, const Fe52x8& a, const Fe52x8& b, const Mont52Ctx& ctx) {
#if defined(ECQV_MONT8_IFMA)
  if (mont8_hw_available()) {
    detail::mont8_mul_ifma(out, a, b, ctx);
    return;
  }
#endif
  detail::mont8_mul_portable(out, a, b, ctx);
}

void mont8_sqr(Fe52x8& out, const Fe52x8& a, const Mont52Ctx& ctx) { mont8_mul(out, a, a, ctx); }

Fe52x8 fe52x8_broadcast(const std::uint64_t v[kFe52Limbs]) {
  Fe52x8 r;
  for (int j = 0; j < kFe52Limbs; ++j)
    for (int lane = 0; lane < 8; ++lane) r.l[j][lane] = v[j];
  return r;
}

void mont8_load(Fe52x8& out, const U256 in[8], const Mont52Ctx& ctx) {
  Fe52x8 packed;
  std::uint64_t limbs[kFe52Limbs];
  for (int lane = 0; lane < 8; ++lane) {
    u256_to_fe52(limbs, in[lane]);
    for (int j = 0; j < kFe52Limbs; ++j) packed.l[j][lane] = limbs[j];
  }
  const Fe52x8 c = fe52x8_broadcast(ctx.to_lane);
  mont8_mul(out, packed, c, ctx);
}

void mont8_store(U256 out[8], const Fe52x8& in, const Mont52Ctx& ctx) {
  Fe52x8 rebased;
  const Fe52x8 c = fe52x8_broadcast(ctx.from_lane);
  mont8_mul(rebased, in, c, ctx);
  std::uint64_t limbs[kFe52Limbs];
  for (int lane = 0; lane < 8; ++lane) {
    for (int j = 0; j < kFe52Limbs; ++j) limbs[j] = rebased.l[j][lane];
    out[lane] = fe52_to_u256(limbs);
  }
}

}  // namespace ecqv::bi
