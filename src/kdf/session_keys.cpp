#include <algorithm>

#include "kdf/session_keys.hpp"

#include "hash/hkdf.hpp"

namespace ecqv::kdf {

void SessionKeys::wipe() {
  secure_wipe(ByteSpan(enc_key));
  secure_wipe(ByteSpan(mac_key));
  secure_wipe(ByteSpan(iv_seed));
}

namespace {
SessionKeys split(const Bytes& okm) {
  SessionKeys keys;
  std::copy_n(okm.begin(), keys.enc_key.size(), keys.enc_key.begin());
  std::copy_n(okm.begin() + static_cast<std::ptrdiff_t>(keys.enc_key.size()),
              keys.mac_key.size(), keys.mac_key.begin());
  std::copy_n(okm.begin() + static_cast<std::ptrdiff_t>(keys.enc_key.size() + keys.mac_key.size()),
              keys.iv_seed.size(), keys.iv_seed.begin());
  return keys;
}
}  // namespace

SessionKeys derive_session_keys(const ec::AffinePoint& premaster, ByteView salt,
                                ByteView info_label) {
  const Bytes x = bi::to_be_bytes(premaster.x);
  return derive_session_keys(x, salt, info_label);
}

SessionKeys derive_session_keys(ByteView secret, ByteView salt, ByteView info_label) {
  const std::size_t total = aes::kKeySize + 32 + aes::kBlockSize;
  Bytes okm = hash::hkdf(salt, secret, info_label, total);
  SessionKeys keys = split(okm);
  secure_wipe(okm);
  return keys;
}

SessionKeys ratchet_session_keys(const SessionKeys& keys, std::uint32_t next_epoch) {
  // IKM is the full current hierarchy so no single sub-key determines the
  // next epoch; the epoch index in the salt pins the chain position.
  Bytes ikm = concat({ByteView(keys.enc_key), ByteView(keys.mac_key), ByteView(keys.iv_seed)});
  Bytes salt = bytes_of("epoch");
  salt.resize(salt.size() + 4);
  store_be32(ByteSpan(salt).subspan(salt.size() - 4), next_epoch);
  SessionKeys next = derive_session_keys(ikm, salt, bytes_of("ecqv-epoch-ratchet-v1"));
  // The negotiated suite is a session property, not key material: it rides
  // across epochs unchanged (and stays out of the IKM so the legacy ratchet
  // chain — and its golden RK1 vector — is byte-identical for suite 0).
  next.suite = keys.suite;
  secure_wipe(ikm);
  return next;
}

void ratchet_session_keys_in_place(SessionKeys& keys, std::uint32_t next_epoch) {
  SessionKeys next = ratchet_session_keys(keys, next_epoch);
  keys.wipe();
  keys = next;
  next.wipe();
}

}  // namespace ecqv::kdf
