#include <algorithm>

#include "kdf/session_keys.hpp"

#include "hash/hkdf.hpp"

namespace ecqv::kdf {

void SessionKeys::wipe() {
  enc_key.wipe();
  mac_key.wipe();
  iv_seed.wipe();
}

bool ct_equal(const SessionKeys& a, const SessionKeys& b) {
  // Bitwise & keeps the verdict accumulation branch-free across fields.
  const bool keys_equal = static_cast<bool>(
      static_cast<unsigned>(ct_equal(a.enc_key, b.enc_key)) &
      static_cast<unsigned>(ct_equal(a.mac_key, b.mac_key)) &
      static_cast<unsigned>(ct_equal(a.iv_seed, b.iv_seed)));
  return keys_equal && a.suite == b.suite;  // suite is public
}

namespace {
SessionKeys split(const Bytes& okm) {
  SessionKeys keys;
  const ByteSpan enc = keys.enc_key.mutable_bytes();
  const ByteSpan mac = keys.mac_key.mutable_bytes();
  const ByteSpan iv = keys.iv_seed.mutable_bytes();
  std::copy_n(okm.begin(), enc.size(), enc.begin());
  std::copy_n(okm.begin() + static_cast<std::ptrdiff_t>(enc.size()), mac.size(), mac.begin());
  std::copy_n(okm.begin() + static_cast<std::ptrdiff_t>(enc.size() + mac.size()), iv.size(),
              iv.begin());
  return keys;
}
}  // namespace

SessionKeys derive_session_keys(const ec::AffinePoint& premaster, ByteView salt,
                                ByteView info_label) {
  const Bytes x = bi::to_be_bytes(premaster.x);
  return derive_session_keys(x, salt, info_label);
}

SessionKeys derive_session_keys(ByteView secret, ByteView salt, ByteView info_label) {
  const std::size_t total = aes::kKeySize + 32 + aes::kBlockSize;
  Bytes okm = hash::hkdf(salt, secret, info_label, total);
  SessionKeys keys = split(okm);
  secure_wipe(okm);
  return keys;
}

SessionKeys ratchet_session_keys(const SessionKeys& keys, std::uint32_t next_epoch) {
  // IKM is the full current hierarchy so no single sub-key determines the
  // next epoch; the epoch index in the salt pins the chain position.
  Bytes ikm = concat({keys.enc_key.bytes(), keys.mac_key.bytes(), keys.iv_seed.bytes()});
  Bytes salt = bytes_of("epoch");
  salt.resize(salt.size() + 4);
  store_be32(ByteSpan(salt).subspan(salt.size() - 4), next_epoch);
  SessionKeys next = derive_session_keys(ikm, salt, bytes_of("ecqv-epoch-ratchet-v1"));
  // The negotiated suite is a session property, not key material: it rides
  // across epochs unchanged (and stays out of the IKM so the legacy ratchet
  // chain — and its golden RK1 vector — is byte-identical for suite 0).
  next.suite = keys.suite;
  secure_wipe(ikm);
  return next;
}

void ratchet_session_keys_in_place(SessionKeys& keys, std::uint32_t next_epoch) {
  SessionKeys next = ratchet_session_keys(keys, next_epoch);
  keys.wipe();
  keys = next;
  next.wipe();
}

}  // namespace ecqv::kdf
