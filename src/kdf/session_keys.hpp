// Session key derivation — paper eqs. (3) and (4):
//
//   KPM = X_A * XG_B = X_B * XG_A        (premaster, an EC point)
//   KS  = KDF(KPM, salt)
//
// KDF is HKDF-SHA256. The session key KS is split into an AES-128
// encryption key, a 256-bit MAC key and an IV seed so that no key is ever
// used for two purposes. The same derivation serves both DKD (STS: KPM from
// ephemeral points) and SKD (S-ECDSA/SCIANC/PORAMB: KPM from static Diffie-
// Hellman), which is exactly what makes the comparison in the paper fair —
// only the *inputs* differ.
#pragma once

#include "aes/aes128.hpp"
#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "common/wipe.hpp"
#include "ec/curve.hpp"

namespace ecqv::kdf {

/// The derived hierarchy is secret-tainted (common/secret.hpp): the key
/// fields have no ==, no [], no bool — code that wants to compare
/// hierarchies goes through ct_equal(a, b) below, and code that feeds a
/// primitive reads `.bytes()`. Each field also wipes itself when the
/// struct dies, so hierarchy temporaries (derivation, ratchet, eviction)
/// leave no residue even on paths that forget to call wipe().
struct SessionKeys {
  using MacKey = std::array<std::uint8_t, 32>;

  ct::Secret<aes::Key> enc_key{};          // AES-128
  ct::Secret<MacKey> mac_key{};            // HMAC-SHA256
  ct::Secret<aes::Iv> iv_seed{};           // per-session IV base
  std::uint8_t suite = 0;                  // aead::SuiteId wire byte (0 = legacy v2)

  /// Wipes all key material (the suite byte is public and survives).
  void wipe();
};

/// Constant-time hierarchy comparison — the ONLY equality over SessionKeys
/// (the member Secrets delete operator==). The suite byte is public and
/// compares normally; key material compares without data-dependent
/// branches.
[[nodiscard]] bool ct_equal(const SessionKeys& a, const SessionKeys& b);

/// The paper's KDF(KPM, salt): premaster point -> session key hierarchy.
/// The premaster enters as the x-coordinate (SEC1 §3.3.1 field-element
/// ECDH convention); `salt` binds the session context (identities and, for
/// the nonce-based protocols, the exchanged nonces).
SessionKeys derive_session_keys(const ec::AffinePoint& premaster, ByteView salt,
                                ByteView info_label);

/// Raw-secret variant for symmetric-only protocols (PORAMB pre-shared
/// pairwise keys).
SessionKeys derive_session_keys(ByteView secret, ByteView salt, ByteView info_label);

/// Epoch ratchet for cheap dynamic-session resumption:
///
///   KS_{i+1} = HKDF(KS_i, "epoch" || i+1)
///
/// A spent record/age budget advances the epoch instead of re-running the
/// full STS handshake: both peers derive the next key hierarchy from the
/// current one and wipe the old keys, so each epoch is forward secure with
/// respect to the previous one (HKDF is one-way) at the cost of a few
/// HMAC-SHA256 compressions instead of four scalar multiplications.
/// `next_epoch` is the 1-based index of the epoch being entered; feeding it
/// to the KDF domain-separates the chain so replaying an announcement
/// cannot re-derive an earlier epoch.
SessionKeys ratchet_session_keys(const SessionKeys& keys, std::uint32_t next_epoch);

/// In-place epoch advance: replaces `keys` with ratchet_session_keys(keys,
/// next_epoch), wiping the previous hierarchy and the derivation temporaries
/// before returning. The advancing store uses this so no extra stack copy of
/// either epoch's keys outlives the call — one hierarchy goes in, its
/// successor comes out, nothing else remains.
void ratchet_session_keys_in_place(SessionKeys& keys, std::uint32_t next_epoch);

}  // namespace ecqv::kdf
