// Clang -Wthread-safety capability annotations for the session fabric.
//
// Every locking invariant in the fabric — "decision+seal+advance happen
// under ONE shard lock" (session_store.cpp), "connect() only after the
// pending-shard locks release" (session_broker.cpp), "drive() requires the
// shard lock" — used to live in comments and TSan's dynamic luck. These
// macros turn the comments into machine-checked contracts: under clang the
// analysis proves at compile time that every GUARDED_BY field is only
// touched with its capability held and that every REQUIRES contract is met
// at every call site; CI builds src/ with -Werror=thread-safety so a
// violation is a build break, not a review comment.
//
// The macros expand to nothing under gcc (and any compiler without the
// attribute), so the portable build is untouched. Conventions:
//
//   * a lockable type is CAPABILITY("mutex"); RAII guards are
//     SCOPED_CAPABILITY (clang does not model std::lock_guard over custom
//     mutexes — always lock through ecqv::MutexLock / ecqv::StdMutexLock,
//     never std::lock_guard directly; tools/ct_lint.py enforces this);
//   * data a lock protects is GUARDED_BY(that_mutex);
//   * a function with a "lock must be held" contract is REQUIRES(mutex) —
//     REQUIRES may name a parameter's member (REQUIRES(shard.mutex)), which
//     is how the sharded structures express per-shard contracts;
//   * a function that must NOT be entered with the lock held (it takes the
//     lock itself, or calls out while callers might hold it) is
//     EXCLUDES(mutex);
//   * NO_THREAD_SAFETY_ANALYSIS is a last resort with a hard budget of 3
//     uses repo-wide (enforced by tools/ct_lint.py), each carrying a
//     justification comment on the preceding lines.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ECQV_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ECQV_THREAD_ANNOTATION
#define ECQV_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

#define CAPABILITY(x) ECQV_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY ECQV_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) ECQV_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) ECQV_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) ECQV_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) ECQV_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) ECQV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) ECQV_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) ECQV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) ECQV_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) ECQV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) ECQV_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) ECQV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) ECQV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) ECQV_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) ECQV_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS ECQV_THREAD_ANNOTATION(no_thread_safety_analysis)
