// Hexadecimal encoding/decoding for test vectors, logging and certificates.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace ecqv {

/// Lower-case hex encoding of a byte view.
std::string to_hex(ByteView data);

/// Decodes a hex string (case-insensitive, optional "0x" prefix, embedded
/// whitespace ignored). Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

}  // namespace ecqv
