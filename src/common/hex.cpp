#include "common/hex.hpp"

#include <cctype>
#include <stdexcept>

namespace ecqv {

namespace {
int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  Bytes out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int n = nibble(c);
    if (n < 0) throw std::invalid_argument("from_hex: invalid character");
    if (hi < 0) {
      hi = n;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | n));
      hi = -1;
    }
  }
  if (hi >= 0) throw std::invalid_argument("from_hex: odd number of digits");
  return out;
}

}  // namespace ecqv
