#include "common/metrics.hpp"

#include <stdexcept>

#include "common/result.hpp"

namespace ecqv {

namespace detail {
thread_local CountScope* g_active_scope = nullptr;
std::atomic<AtomicCountSink*> g_global_sink{nullptr};
}  // namespace detail

GlobalCountScope::GlobalCountScope(AtomicCountSink& sink) {
  AtomicCountSink* expected = nullptr;
  if (!detail::g_global_sink.compare_exchange_strong(expected, &sink))
    throw std::logic_error("GlobalCountScope: a global sink is already installed");
}

GlobalCountScope::~GlobalCountScope() { detail::g_global_sink.store(nullptr); }

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kEcMulBase: return "ec_mul_base";
    case Op::kEcMulVar: return "ec_mul_var";
    case Op::kEcMulDual: return "ec_mul_dual";
    case Op::kEcMulDualCached: return "ec_mul_dual_cached";
    case Op::kEcAdd: return "ec_add";
    case Op::kModInv: return "mod_inv";
    case Op::kSha256Block: return "sha256_block";
    case Op::kAesBlock: return "aes_block";
    case Op::kHmac: return "hmac";
    case Op::kCmac: return "cmac";
    case Op::kDrbgByte: return "drbg_byte";
    case Op::kFpMul: return "fp_mul";
    case Op::kFpSqr: return "fp_sqr";
    case Op::kCount: break;
  }
  return "?";
}

OpCounts& OpCounts::operator+=(const OpCounts& other) {
  for (std::size_t i = 0; i < kOpCount; ++i) counts[i] += other.counts[i];
  return *this;
}

// Only the innermost scope is bumped live (see inline count_op); totals
// propagate outward when scopes unwind, so nesting stays O(1) per count.
CountScope::CountScope() : parent_(detail::g_active_scope) { detail::g_active_scope = this; }

CountScope::~CountScope() {
  detail::g_active_scope = parent_;
  if (parent_ != nullptr) {
    parent_->counts_ += counts_;
  } else if (AtomicCountSink* sink = detail::g_global_sink.load(std::memory_order_relaxed);
             sink != nullptr) {
    // Root scope on a worker thread: hand the tally to the process-wide
    // sink so multi-threaded accounting loses nothing.
    sink->add(counts_);
  }
}

const char* error_name(Error e) {
  switch (e) {
    case Error::kOk: return "ok";
    case Error::kDecodeFailed: return "decode_failed";
    case Error::kInvalidPoint: return "invalid_point";
    case Error::kInvalidSignature: return "invalid_signature";
    case Error::kAuthenticationFailed: return "authentication_failed";
    case Error::kBadState: return "bad_state";
    case Error::kBadLength: return "bad_length";
    case Error::kInternal: return "internal";
  }
  return "?";
}

}  // namespace ecqv
