// Secret-taint types: key material the type system refuses to branch on.
//
// The paper's embedded deployment (and every constant-time discipline rule
// in src/ec, src/aes, src/aead) demands that secret bytes never feed a
// data-dependent branch, comparison or table index. Until now that rule
// lived in comments; ct::Secret<T> makes it a compile error. A Secret wraps
// a trivially-copyable value (an AES key, a MAC key, an IV seed, an ECDSA
// nonce scalar) and deletes every operator an accidental leak would ride
// on: ==, !=, <, [], bool. Exactly three escapes exist, all greppable:
//
//   * ct_equal(a, b)   — constant-time comparison (the only equality);
//   * wipe()           — zeroize through the DSE-hardened secure_wipe;
//   * declassify()     — explicit typed access. Every call site is an
//     auditable assertion that the use is safe: either the value enters a
//     constant-time pipeline that needs the underlying type (Montgomery
//     scalar arithmetic), or the derived value is public by construction.
//
// bytes()/mutable_bytes() expose the raw octets for feeding constant-time
// primitives (HKDF, HMAC, the AES key schedule) and for derivation fills;
// they return spans, so a misuse (memcmp, operator== on the span contents)
// is caught by tools/ct_lint.py rather than the type system — the lint and
// the types are one mechanism split across what C++ can and cannot express.
//
// Secrets wipe themselves on destruction: a Secret that goes out of scope
// — a derivation temporary, an evicted session's hierarchy, a retired
// epoch — leaves no residue. That is also why Secret is NOT trivially
// destructible; holders that need trivial destruction keep raw arrays and
// register with the ct_lint wipe-in-destructor registry instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/bytes.hpp"
#include "common/ct_equal.hpp"
#include "common/wipe.hpp"

namespace ecqv::ct {

/// Non-owning view of secret bytes. Same taint rules as Secret<T>:
/// comparison and indexing are deleted; the raw span escapes only through
/// declassify(). Use it for function parameters that receive key material
/// (so the signature documents the taint) without forcing the caller's
/// storage into a Secret<T>.
class SecretSpan {
 public:
  constexpr SecretSpan(std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit constexpr SecretSpan(ByteSpan bytes) : data_(bytes.data()), size_(bytes.size()) {}

  SecretSpan(const SecretSpan&) = default;
  SecretSpan& operator=(const SecretSpan&) = default;

  bool operator==(const SecretSpan&) const = delete;
  bool operator!=(const SecretSpan&) const = delete;
  std::uint8_t& operator[](std::size_t) const = delete;

  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }

  /// Explicit escape: the caller asserts this use is constant-time-safe.
  [[nodiscard]] constexpr ByteView declassify() const { return ByteView(data_, size_); }
  [[nodiscard]] constexpr ByteSpan declassify_mut() const { return ByteSpan(data_, size_); }

  void wipe() const { secure_wipe(ByteSpan(data_, size_)); }

  /// Constant-time equality — the ONLY comparison on secret views.
  friend bool ct_equal(const SecretSpan& a, const SecretSpan& b) {
    return a.size_ == b.size_ && ecqv::ct_equal(ByteView(a.data_, a.size_), ByteView(b.data_, b.size_));
  }

 private:
  std::uint8_t* data_;
  std::size_t size_;
};

/// Owning secret value. T must be trivially copyable (byte arrays, POD
/// scalar limb structs) so bytes() / wipe() can treat it as raw octets.
template <typename T>
class Secret {
  static_assert(std::is_trivially_copyable_v<T>,
                "ct::Secret requires a trivially copyable payload");

 public:
  Secret() : value_{} {}
  explicit Secret(const T& value) : value_(value) {}

  Secret(const Secret&) = default;
  Secret& operator=(const Secret&) = default;

  /// Secrets leave no residue: destruction zeroizes through the
  /// DSE-hardened wipe path.
  ~Secret() { wipe(); }

  // No comparisons, no indexing, no truthiness: branching on a secret is a
  // compile error. tests/compile_fail/secret_compare.cpp pins this.
  bool operator==(const Secret&) const = delete;
  bool operator!=(const Secret&) const = delete;
  bool operator<(const Secret&) const = delete;
  explicit operator bool() const = delete;

  /// Raw octets for constant-time primitives (HKDF/HMAC input, AES key
  /// schedule expansion). The span itself is still secret — never memcmp
  /// or == it (tools/ct_lint.py polices the span escapes).
  [[nodiscard]] ByteView bytes() const {
    return ByteView(reinterpret_cast<const std::uint8_t*>(&value_), sizeof(T));
  }
  [[nodiscard]] ByteSpan mutable_bytes() {
    return ByteSpan(reinterpret_cast<std::uint8_t*>(&value_), sizeof(T));
  }
  [[nodiscard]] constexpr std::size_t size() const { return sizeof(T); }

  /// Explicit escape hatch: every call site is an audited assertion that
  /// the typed value enters a constant-time pipeline (e.g. Montgomery
  /// scalar arithmetic) or is public by construction. Grep for
  /// `.declassify()` to review the entire taint boundary.
  [[nodiscard]] const T& declassify() const { return value_; }

  void wipe() { secure_wipe(mutable_bytes()); }

  /// Constant-time equality — the ONLY comparison on secrets.
  friend bool ct_equal(const Secret& a, const Secret& b) {
    return ecqv::ct_equal(a.bytes(), b.bytes());
  }

 private:
  T value_;
};

}  // namespace ecqv::ct
