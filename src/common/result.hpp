// Lightweight Result<T> for recoverable protocol/crypto failures.
//
// Policy (see README "Error handling"): exceptions signal programming errors
// (bad sizes handed to codecs, contract violations); Result signals expected
// runtime outcomes an embedded caller must branch on (signature invalid,
// certificate malformed, MAC mismatch). This mirrors E.2/E.3 of the C++ Core
// Guidelines.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace ecqv {

enum class Error {
  kOk = 0,
  kDecodeFailed,         // malformed wire data / certificate
  kInvalidPoint,         // point not on curve or at infinity where forbidden
  kInvalidSignature,     // ECDSA verification failed
  kAuthenticationFailed, // MAC / response verification failed
  kBadState,             // protocol message arrived in the wrong state
  kBadLength,            // field length mismatch
  kInternal,             // invariant violation escaping as a value
};

/// Human-readable name for diagnostics and logs.
const char* error_name(Error e);

template <typename T>
class Result {
 public:
  // Implicit construction from values and errors keeps call sites terse,
  // matching std::expected usage patterns.
  Result(T value) : value_(std::move(value)), error_(Error::kOk) {}  // NOLINT
  Result(Error error) : error_(error) {}                             // NOLINT

  [[nodiscard]] bool ok() const { return error_ == Error::kOk; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] Error error() const { return error_; }

  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  [[nodiscard]] const T& operator*() const& { return *value_; }
  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }
  [[nodiscard]] T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Error error_;
};

/// Result<void> specialization-alike for operations with no payload.
class Status {
 public:
  Status() : error_(Error::kOk) {}
  Status(Error error) : error_(error) {}  // NOLINT

  [[nodiscard]] bool ok() const { return error_ == Error::kOk; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] Error error() const { return error_; }

 private:
  Error error_;
};

}  // namespace ecqv
