#include "common/wipe.hpp"

#include <cstring>

namespace ecqv {

namespace {

// The store goes through a volatile function pointer so the optimizer cannot
// prove the callee is memset and dead-store-eliminate a wipe of a buffer
// whose lifetime ends right after (the exact pattern of a destructor wiping
// key material). Same defence OPENSSL_cleanse and sodium_memzero use where
// no memset_s/explicit_bzero exists.
using MemsetFn = void* (*)(void*, int, std::size_t);
volatile MemsetFn memset_fn = std::memset;

}  // namespace

void secure_wipe(ByteSpan data) {
  if (data.empty()) return;
  memset_fn(data.data(), 0, data.size());
#if defined(__GNUC__) || defined(__clang__)
  // Second line of defence: declare the buffer escaped so the stores stay
  // observable even if LTO ever devirtualizes the pointer indirection.
  asm volatile("" : : "r"(data.data()) : "memory");
#endif
}

void secure_wipe(Bytes& data) {
  secure_wipe(ByteSpan(data));
  data.clear();
}

}  // namespace ecqv
