#include "common/wipe.hpp"

namespace ecqv {

void secure_wipe(ByteSpan data) {
  volatile std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = 0;
}

void secure_wipe(Bytes& data) {
  secure_wipe(ByteSpan(data));
  data.clear();
}

}  // namespace ecqv
