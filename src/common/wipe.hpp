// Best-effort secret erasure. The paper's threat model (T3 node capture)
// assumes device credentials can be extracted; wiping retired session keys
// narrows the capture window to the live session.
#pragma once

#include "common/bytes.hpp"

namespace ecqv {

/// Overwrites the view with zeros through a volatile pointer so the store is
/// not elided by the optimizer.
void secure_wipe(ByteSpan data);

/// Convenience overload wiping an entire owned buffer, then clearing it.
void secure_wipe(Bytes& data);

}  // namespace ecqv
