#include "common/bytes.hpp"

#include <cassert>
#include <stdexcept>

namespace ecqv {

Bytes& append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
  return dst;
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

void xor_into(ByteSpan dst, ByteView src) {
  if (dst.size() != src.size()) throw std::invalid_argument("xor_into: size mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

void store_be16(ByteSpan out, std::uint16_t v) {
  if (out.size() < 2) throw std::invalid_argument("store_be16: need 2 bytes");
  out[0] = static_cast<std::uint8_t>(v >> 8);
  out[1] = static_cast<std::uint8_t>(v);
}

void store_be32(ByteSpan out, std::uint32_t v) {
  if (out.size() < 4) throw std::invalid_argument("store_be32: need 4 bytes");
  for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
}

void store_be64(ByteSpan out, std::uint64_t v) {
  if (out.size() < 8) throw std::invalid_argument("store_be64: need 8 bytes");
  for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

std::uint16_t load_be16(ByteView in) {
  if (in.size() < 2) throw std::invalid_argument("load_be16: need 2 bytes");
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(in[0]) << 8) | in[1]);
}

std::uint32_t load_be32(ByteView in) {
  if (in.size() < 4) throw std::invalid_argument("load_be32: need 4 bytes");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | in[static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t load_be64(ByteView in) {
  if (in.size() < 8) throw std::invalid_argument("load_be64: need 8 bytes");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace ecqv
