// Constant-time comparison primitives for secret-derived bytes.
//
// Every tag/MAC/padding check in the library routes through here so the
// decision "reject" never leaks WHERE the mismatch was through early-exit
// timing: the full input is always scanned and the verdict is accumulated
// through mask arithmetic, never a data-dependent branch. Used by
// SecureChannel::open (record MACs), the AEAD suites (GCM/CCM tags), the
// STS MAC-signature mode, the RK1/RK2 ratchet announcements and the CBC
// PKCS#7 pad check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ecqv {

using CtByteView = std::span<const std::uint8_t>;

/// Constant-time equality over equally-sized views; returns false on size
/// mismatch without inspecting contents. (Sizes are public — lengths travel
/// on the wire — only the CONTENT comparison must not branch.)
bool ct_equal(CtByteView a, CtByteView b);

/// 0xFF when a == b, 0x00 otherwise — no data-dependent branches.
[[nodiscard]] constexpr std::uint8_t ct_eq_mask(std::uint8_t a, std::uint8_t b) {
  const std::uint32_t diff = static_cast<std::uint32_t>(a ^ b);
  // diff | -diff has its top bit set exactly when diff != 0.
  const std::uint32_t nonzero = (diff | (0u - diff)) >> 31;
  return static_cast<std::uint8_t>((nonzero - 1u) & 0xFFu);
}

/// 0xFF when a <= b (unsigned), 0x00 otherwise.
[[nodiscard]] constexpr std::uint8_t ct_le_mask(std::uint8_t a, std::uint8_t b) {
  // b - a wraps (top bit set) exactly when a > b.
  const std::uint32_t gt = (static_cast<std::uint32_t>(b) - a) >> 31;
  return static_cast<std::uint8_t>((gt - 1u) & 0xFFu);
}

/// Constant-time PKCS#7 pad check over the final `block_size` bytes of
/// `padded`: returns the pad length in [1, block_size] when valid, 0 when
/// malformed. The scan always touches exactly block_size trailing bytes
/// whatever the claimed pad value says, so a padding oracle cannot localize
/// the first bad byte. Requires padded.size() >= block_size.
[[nodiscard]] std::size_t ct_pkcs7_pad_len(CtByteView padded, std::size_t block_size);

}  // namespace ecqv
