#include "common/ct_equal.hpp"

namespace ecqv {

bool ct_equal(CtByteView a, CtByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

std::size_t ct_pkcs7_pad_len(CtByteView padded, std::size_t block_size) {
  if (padded.size() < block_size) return 0;
  const std::uint8_t pad = padded[padded.size() - 1];
  // Claimed pad must be in [1, block_size].
  std::uint8_t ok = ct_le_mask(1, pad) & ct_le_mask(pad, static_cast<std::uint8_t>(block_size));
  // Scan the full final block: byte i-from-the-end must equal `pad`
  // whenever i <= pad. Positions beyond the claimed pad contribute nothing,
  // but they are still read — the access pattern is pad-independent.
  for (std::size_t i = 1; i <= block_size; ++i) {
    const std::uint8_t in_pad = ct_le_mask(static_cast<std::uint8_t>(i), pad);
    const std::uint8_t matches = ct_eq_mask(padded[padded.size() - i], pad);
    ok &= static_cast<std::uint8_t>(matches | ~in_pad);
  }
  return (ok & 1u) != 0 ? pad : 0;
}

}  // namespace ecqv
