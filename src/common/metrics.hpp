// Primitive-operation accounting.
//
// The embedded device cost model (src/sim) predicts per-device execution
// times as dot(primitive counts, per-device primitive costs). Counts are
// collected from *real* executions of the crypto code: every primitive bumps
// the thread-local counter when a CountScope is active. This keeps the model
// honest — the counts can never drift from what the implementation actually
// computes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace ecqv {

/// Primitive operation classes priced by the device model. The granularity
/// matches what dominates on the paper's microcontrollers: EC scalar
/// multiplications dwarf everything, then hashing/AES block work, then RNG.
enum class Op : std::uint8_t {
  kEcMulBase,   // scalar * G (known base point)
  kEcMulVar,    // scalar * P (arbitrary point)
  kEcMulDual,   // u1*G + u2*P via Straus (ECDSA verify, ECQV extract)
  kEcMulDualCached,  // Straus dual-mul over a cached per-peer table (no build)
  kEcAdd,       // standalone point addition
  kModInv,      // modular inversion (affine conversion, ECDSA)
  kSha256Block, // one SHA-256 compression
  kAesBlock,    // one AES-128 block (any mode)
  kHmac,        // one HMAC invocation (fixed small input)
  kCmac,        // one AES-CMAC invocation
  kDrbgByte,    // one byte of DRBG output
  kFpMul,       // one Montgomery field/scalar multiplication (either modulus)
  kFpSqr,       // one dedicated Montgomery squaring (either modulus)
  kCount,
};

inline constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

/// Short mnemonic for reports ("ec_mul_base", ...).
std::string_view op_name(Op op);

/// A vector of per-primitive counts. Value type: freely copyable.
struct OpCounts {
  std::array<std::uint64_t, kOpCount> counts{};

  std::uint64_t& operator[](Op op) { return counts[static_cast<std::size_t>(op)]; }
  std::uint64_t operator[](Op op) const { return counts[static_cast<std::size_t>(op)]; }

  OpCounts& operator+=(const OpCounts& other);
  friend OpCounts operator+(OpCounts a, const OpCounts& b) { return a += b; }
  bool operator==(const OpCounts&) const = default;
};

/// RAII scope that makes a fresh counter active on this thread. Scopes nest;
/// inner scopes forward their tallies to the enclosing scope on destruction
/// so an outer "whole protocol" scope sees everything.
class CountScope {
 public:
  CountScope();
  ~CountScope();
  CountScope(const CountScope&) = delete;
  CountScope& operator=(const CountScope&) = delete;

  /// Counts accumulated so far inside this scope.
  [[nodiscard]] const OpCounts& counts() const { return counts_; }

  /// Direct bump used by the inline count_op fast path.
  void bump(Op op, std::uint64_t n) { counts_[op] += n; }

 private:
  OpCounts counts_;
  CountScope* parent_;
};

/// Process-wide atomic tally: the multi-threaded counterpart of OpCounts.
/// Worker-pool code (the concurrent broker) bumps it from many threads at
/// once; relaxed fetch_add guarantees no increment is ever lost, which the
/// threaded soak test asserts exactly.
class AtomicCountSink {
 public:
  void bump(Op op, std::uint64_t n) {
    counts_[static_cast<std::size_t>(op)].fetch_add(n, std::memory_order_relaxed);
  }
  void add(const OpCounts& counts) {
    for (std::size_t i = 0; i < kOpCount; ++i)
      counts_[i].fetch_add(counts.counts[i], std::memory_order_relaxed);
  }
  [[nodiscard]] OpCounts snapshot() const {
    OpCounts out;
    for (std::size_t i = 0; i < kOpCount; ++i)
      out.counts[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
  }
  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kOpCount> counts_{};
};

namespace detail {
/// The innermost active scope on this thread (nullptr when counting is off).
/// Exposed only so count_op below can inline to a TLS load + branch — it is
/// called per field multiplication on the scalar-multiplication hot path,
/// where an out-of-line call would cost more than the multiply bookkeeping.
extern thread_local CountScope* g_active_scope;
/// Process-global fallback sink (nullptr when none installed): threads with
/// no active CountScope route their bumps here, and a root CountScope on
/// any thread forwards its tally here on destruction. This is how the
/// worker pool's primitive counts stay exact — every worker contributes to
/// one shared atomic tally regardless of which thread ran the crypto.
extern std::atomic<AtomicCountSink*> g_global_sink;
}  // namespace detail

/// RAII: installs `sink` as the process-global fallback for the scope's
/// lifetime. At most one may be active at a time (nesting throws). Ops on
/// threads without their own CountScope land in the sink directly; root
/// CountScopes (e.g. the per-operation segment scopes inside protocol
/// parties running on worker threads) forward their totals on destruction.
///
/// Lifetime contract: destroy the scope only after every thread that may
/// still call count_op() has quiesced (join the workers first). A thread
/// racing the destructor could load the sink pointer just before it is
/// cleared and bump a sink that no longer exists — same rule as any
/// observer deregistration.
class GlobalCountScope {
 public:
  explicit GlobalCountScope(AtomicCountSink& sink);
  ~GlobalCountScope();
  GlobalCountScope(const GlobalCountScope&) = delete;
  GlobalCountScope& operator=(const GlobalCountScope&) = delete;
};

/// Bumps the active thread-local counter, falling back to the process-wide
/// atomic sink when no scope is active on this thread. Called from the
/// crypto primitives themselves.
inline void count_op(Op op, std::uint64_t n = 1) {
  if (detail::g_active_scope != nullptr) {
    detail::g_active_scope->bump(op, n);
    return;
  }
  if (AtomicCountSink* sink = detail::g_global_sink.load(std::memory_order_relaxed);
      sink != nullptr)
    sink->bump(op, n);
}

}  // namespace ecqv
