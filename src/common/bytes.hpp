// Byte-buffer utilities shared by every subsystem.
//
// The library deliberately uses a thin alias over std::vector<uint8_t> plus
// span-based free functions instead of a bespoke buffer class: protocol
// messages, certificates, hashes and keys are all just byte strings, and the
// C++ Core Guidelines favour vocabulary types (SL.con) over wrappers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ct_equal.hpp"  // ct_equal and the ct_* mask helpers

namespace ecqv {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;
using ByteSpan = std::span<std::uint8_t>;

/// Appends `src` to `dst`; returns `dst` for chaining.
Bytes& append(Bytes& dst, ByteView src);

/// Concatenates any number of byte views into a fresh buffer.
Bytes concat(std::initializer_list<ByteView> parts);

/// Builds a buffer from a string's raw bytes (no terminator).
Bytes bytes_of(std::string_view text);

// ct_equal(ByteView, ByteView) comes from common/ct_equal.hpp (ByteView is
// the same std::span<const std::uint8_t> as CtByteView there).

/// XOR `src` into `dst` element-wise; both views must have equal size.
void xor_into(ByteSpan dst, ByteView src);

/// Big-endian 16/32/64-bit integer store/load helpers used by the codecs.
void store_be16(ByteSpan out, std::uint16_t v);
void store_be32(ByteSpan out, std::uint32_t v);
void store_be64(ByteSpan out, std::uint64_t v);
std::uint16_t load_be16(ByteView in);
std::uint32_t load_be32(ByteView in);
std::uint64_t load_be64(ByteView in);

}  // namespace ecqv
