// Concurrency primitives for the session fabric.
//
// The fabric serves two deployment shapes from one code base: the paper's
// single-threaded embedded event loop, and a multi-core backend where a
// worker pool terminates handshakes for thousands of peers concurrently
// (ROADMAP item e). The store/broker data structures therefore take their
// locking through OptionalMutex — a mutex that degrades to a branch on a
// bool when concurrency is off — and count through StatCounter, a relaxed
// atomic that still reads, copies and compares like a plain uint64_t so
// every existing single-threaded call site keeps working unchanged.
//
// Both lockables are Clang thread-safety capabilities
// (common/thread_annotations.hpp): fields they protect carry GUARDED_BY,
// "lock held" helper contracts carry REQUIRES, and CI compiles src/ with
// -Werror=thread-safety. Clang's analysis does not model std::lock_guard
// over custom mutexes, so locking always goes through the annotated RAII
// guards below (MutexLock / StdMutexLock) — tools/ct_lint.py rejects raw
// std::lock_guard<OptionalMutex> for exactly this reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace ecqv {

/// A mutex with a runtime enable switch. Disabled (the default), lock() and
/// unlock() are a predictable branch — the embedded single-threaded profile
/// pays no atomic RMW per store operation. Enabled, it is a real
/// std::mutex. BasicLockable, so std::lock_guard/std::scoped_lock work —
/// but lock through MutexLock so the thread-safety analysis sees the
/// acquisition.
///
/// The switch must be thrown before the structure is shared across threads
/// (constructors do this from a config flag); flipping it while threads are
/// already inside is undefined, exactly like replacing a mutex in use.
///
/// The capability is held even when the runtime switch is off: the analysis
/// checks the LOCKING DISCIPLINE (which code paths take which locks), not
/// whether the lock compiles down to a branch — a discipline violation in
/// the single-threaded profile is the same bug waiting for the concurrent
/// profile to arm it.
class CAPABILITY("mutex") OptionalMutex {
 public:
  OptionalMutex() = default;
  explicit OptionalMutex(bool enabled) : enabled_(enabled) {}
  OptionalMutex(const OptionalMutex&) = delete;
  OptionalMutex& operator=(const OptionalMutex&) = delete;

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void lock() ACQUIRE() {
    if (enabled_) mutex_.lock();
  }
  void unlock() RELEASE() {
    if (enabled_) mutex_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) { return !enabled_ || mutex_.try_lock(); }

  /// Analysis-only assertion that the calling thread holds this capability.
  /// For callback re-entry points the analysis cannot follow (e.g. the bus
  /// frame sinks CanFdTransport registers, invoked from flush() under the
  /// lock). No runtime effect — the claim is vouched for by the registration
  /// site, not checked.
  void assert_held() const ASSERT_CAPABILITY(this) {}

 private:
  bool enabled_ = false;
  std::mutex mutex_;
};

/// An always-on annotated mutex: std::mutex as a thread-safety capability.
/// Structures that are concurrent by construction (worker queues, timeline
/// recorders, locked RNG adapters) use this instead of a bare std::mutex so
/// their GUARDED_BY fields are analyzable. BasicLockable; native() exposes
/// the underlying std::mutex for std::unique_lock + condition-variable
/// waits (those sites are the NO_THREAD_SAFETY_ANALYSIS budget).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// See OptionalMutex::assert_held().
  void assert_held() const ASSERT_CAPABILITY(this) {}

  [[nodiscard]] std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII guard for OptionalMutex, visible to the thread-safety analysis
/// (std::lock_guard is not). unlock()/lock() support the drop-relock shape
/// (e.g. PeerKeyCache::get does its extraction off-lock).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(OptionalMutex& mutex) ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() {
    mutex_.unlock();
    held_ = false;
  }
  void lock() ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  OptionalMutex& mutex_;
  bool held_ = true;
};

/// RAII guard for Mutex (the always-on capability).
class SCOPED_CAPABILITY StdMutexLock {
 public:
  explicit StdMutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~StdMutexLock() RELEASE() { mutex_.unlock(); }
  StdMutexLock(const StdMutexLock&) = delete;
  StdMutexLock& operator=(const StdMutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Monotonic event counter for Stats blocks: a relaxed std::atomic with the
/// value semantics of a plain integer. Increments from any thread never
/// lose updates (the worker pool's accounting stays exact); reads, copies
/// and comparisons behave like uint64_t so Stats structs remain aggregate
/// snapshots to their consumers. Being atomic, StatCounter fields need no
/// GUARDED_BY — the thread-safety analysis correctly demands nothing here.
///
/// Relaxed ordering is deliberate: these are tallies, not synchronization —
/// readers only need each increment to eventually be visible and none to be
/// lost, which relaxed fetch_add guarantees.
class StatCounter {
 public:
  StatCounter(std::uint64_t v = 0) : value_(v) {}  // NOLINT(google-explicit-constructor)
  StatCounter(const StatCounter& other) : value_(other.load()) {}
  StatCounter& operator=(const StatCounter& other) {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(std::uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] std::uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  operator std::uint64_t() const { return load(); }  // NOLINT(google-explicit-constructor)

  StatCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator+=(std::uint64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> value_;
};

}  // namespace ecqv
