// Concurrency primitives for the session fabric.
//
// The fabric serves two deployment shapes from one code base: the paper's
// single-threaded embedded event loop, and a multi-core backend where a
// worker pool terminates handshakes for thousands of peers concurrently
// (ROADMAP item e). The store/broker data structures therefore take their
// locking through OptionalMutex — a mutex that degrades to a branch on a
// bool when concurrency is off — and count through StatCounter, a relaxed
// atomic that still reads, copies and compares like a plain uint64_t so
// every existing single-threaded call site keeps working unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

namespace ecqv {

/// A mutex with a runtime enable switch. Disabled (the default), lock() and
/// unlock() are a predictable branch — the embedded single-threaded profile
/// pays no atomic RMW per store operation. Enabled, it is a real
/// std::mutex. BasicLockable, so std::lock_guard/std::scoped_lock work.
///
/// The switch must be thrown before the structure is shared across threads
/// (constructors do this from a config flag); flipping it while threads are
/// already inside is undefined, exactly like replacing a mutex in use.
class OptionalMutex {
 public:
  OptionalMutex() = default;
  explicit OptionalMutex(bool enabled) : enabled_(enabled) {}
  OptionalMutex(const OptionalMutex&) = delete;
  OptionalMutex& operator=(const OptionalMutex&) = delete;

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void lock() {
    if (enabled_) mutex_.lock();
  }
  void unlock() {
    if (enabled_) mutex_.unlock();
  }
  bool try_lock() { return !enabled_ || mutex_.try_lock(); }

 private:
  bool enabled_ = false;
  std::mutex mutex_;
};

/// Monotonic event counter for Stats blocks: a relaxed std::atomic with the
/// value semantics of a plain integer. Increments from any thread never
/// lose updates (the worker pool's accounting stays exact); reads, copies
/// and comparisons behave like uint64_t so Stats structs remain aggregate
/// snapshots to their consumers.
///
/// Relaxed ordering is deliberate: these are tallies, not synchronization —
/// readers only need each increment to eventually be visible and none to be
/// lost, which relaxed fetch_add guarantees.
class StatCounter {
 public:
  StatCounter(std::uint64_t v = 0) : value_(v) {}  // NOLINT(google-explicit-constructor)
  StatCounter(const StatCounter& other) : value_(other.load()) {}
  StatCounter& operator=(const StatCounter& other) {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(std::uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] std::uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  operator std::uint64_t() const { return load(); }  // NOLINT(google-explicit-constructor)

  StatCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator+=(std::uint64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> value_;
};

}  // namespace ecqv
