// Security matrix: maps measured SecurityFacts to the paper's Table III
// verdicts (✗ weak / ∆ partial / ✓ full) using the scoring rationale of
// §V-D, and renders the Fig. 8 threat-countermeasure mapping.
//
// The facts are measured (src/attack/scenarios.hpp); only this mapping —
// which mirrors the paper's own qualitative judgment — is fixed:
//
//  * Data exposure (T1): Full iff recorded traffic stays confidential after
//    a long-term key leak (forward secrecy); Weak otherwise.
//  * Node capturing (T3): no protocol is Full (the paper: even STS only
//    protects *previous* messages, not future ones). Partial with
//    asymmetric signature authentication (a captured key impersonates only
//    the captured node); Weak with symmetric authentication.
//  * Key data reuse (T4): Full iff each session derives a fresh key that is
//    not derivable from long-term material; Partial if fresh but derivable
//    (nonce-diversified SKD); Weak if the same key recurs.
//  * Key derivation exploit (T5): Full iff keys are ephemeral and
//    underivable; Partial when the derivation roots in a static secret or
//    couples authentication to the session key.
//  * Auth. procedure: Full for certificate-bound signature authentication;
//    Partial for symmetric MAC schemes (key distribution/coupling caveats).
#pragma once

#include <string>
#include <vector>

#include "attack/scenarios.hpp"
#include "sim/paper_data.hpp"

namespace ecqv::attack {

struct MatrixCell {
  sim::SecurityProperty property;
  proto::ProtocolKind protocol;
  sim::Verdict measured;
  sim::Verdict paper;
  [[nodiscard]] bool matches() const { return measured == paper; }
};

/// Scores one protocol's facts into the five Table III verdicts.
sim::Verdict score(sim::SecurityProperty property, const SecurityFacts& facts);

/// Builds the full measured-vs-paper matrix (4 protocols x 5 properties).
std::vector<MatrixCell> build_matrix(std::uint64_t seed = 7);

/// Fig. 8: threat -> countermeasure mapping for the STS-ECQV design,
/// rendered as Graphviz DOT (assets: session data, security credentials;
/// threats T1-T5; countermeasures C1-C3 and the partial-protection note).
std::string fig8_dot();

}  // namespace ecqv::attack
