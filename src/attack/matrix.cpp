#include "attack/matrix.hpp"

#include <sstream>

namespace ecqv::attack {

using sim::SecurityProperty;
using sim::Verdict;

Verdict score(SecurityProperty property, const SecurityFacts& facts) {
  switch (property) {
    case SecurityProperty::kDataExposure:
      return facts.past_traffic_exposed ? Verdict::kWeak : Verdict::kFull;

    case SecurityProperty::kNodeCapturing:
      // Nobody is fully protected: captured credentials always allow
      // impersonating the captured node in future sessions.
      return facts.signature_auth ? Verdict::kPartial : Verdict::kWeak;

    case SecurityProperty::kKeyDataReuse:
      if (!facts.fresh_keys_per_session) return Verdict::kWeak;
      return facts.keys_derivable_from_longterm ? Verdict::kPartial : Verdict::kFull;

    case SecurityProperty::kKeyDerivationExploit:
      if (facts.fresh_keys_per_session && !facts.keys_derivable_from_longterm &&
          !facts.past_traffic_exposed)
        return Verdict::kFull;
      return Verdict::kPartial;  // DH-rooted, high entropy, but static/coupled

    case SecurityProperty::kAuthProcedure:
      return facts.signature_auth && facts.mitm_rejected ? Verdict::kFull : Verdict::kPartial;
  }
  return Verdict::kWeak;
}

std::vector<MatrixCell> build_matrix(std::uint64_t seed) {
  std::vector<MatrixCell> cells;
  for (const auto protocol : sim::kTable3Columns) {
    const SecurityFacts facts = run_scenarios(protocol, seed);
    for (const auto property : sim::kTable3Rows) {
      cells.push_back(MatrixCell{property, protocol, score(property, facts),
                                 sim::table3_verdict(property, protocol)});
    }
  }
  return cells;
}

std::string fig8_dot() {
  std::ostringstream dot;
  dot << "digraph sts_ecqv_threat_model {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box];\n"
      << "  subgraph cluster_assets { label=\"Assets\";\n"
      << "    session_data [label=\"Session Data\"];\n"
      << "    credentials [label=\"Security Credentials\"];\n  }\n"
      << "  subgraph cluster_threats { label=\"Threats\";\n"
      << "    t1 [label=\"[T1] Past Data Exposure\"];\n"
      << "    t2 [label=\"[T2] MitM Attacks\"];\n"
      << "    t3 [label=\"[T3] Node Capture\"];\n"
      << "    t4 [label=\"[T4] Key Data Reuse\"];\n"
      << "    t5 [label=\"[T5] Key Deriv. Exploitation\"];\n  }\n"
      << "  subgraph cluster_counters { label=\"Countermeasures\";\n"
      << "    c1 [label=\"[C1] Forward Secrecy\"];\n"
      << "    c2 [label=\"[C2] ECDSA Authentication\"];\n"
      << "    c3 [label=\"[C3] STS & ECQV Property\"];\n"
      << "    r [label=\"[R] Partial Protection\", style=dashed];\n  }\n"
      << "  t1 -> session_data; t2 -> session_data; t2 -> credentials;\n"
      << "  t3 -> credentials; t4 -> credentials; t5 -> credentials;\n"
      << "  c1 -> t1; c1 -> t4;\n"
      << "  c2 -> t2;\n"
      << "  c3 -> t4; c3 -> t5;\n"
      << "  r -> t3;\n"
      << "}\n";
  return dot.str();
}

}  // namespace ecqv::attack
