#include "attack/scenarios.hpp"

#include <stdexcept>

#include "attack/kci.hpp"
#include "core/secure_channel.hpp"
#include "rng/test_rng.hpp"

namespace ecqv::attack {

namespace {

using proto::ProtocolKind;

constexpr std::uint64_t kNow = 1700000000;
constexpr std::uint64_t kLifetime = 86400;

struct World {
  cert::CertificateAuthority ca;
  proto::Credentials alice;
  proto::Credentials bob;

  explicit World(std::uint64_t seed)
      : ca(cert::DeviceId::from_string("gateway-ca"),
           [&] {
             rng::TestRng boot(seed);
             return ec::Curve::p256().random_scalar(boot);
           }()),
        alice([&] {
          rng::TestRng r(seed + 1);
          return proto::provision_device(ca, cert::DeviceId::from_string("alice"), kNow,
                                         kLifetime, r);
        }()),
        bob([&] {
          rng::TestRng r(seed + 2);
          return proto::provision_device(ca, cert::DeviceId::from_string("bob"), kNow, kLifetime,
                                         r);
        }()) {
    rng::TestRng r(seed + 3);
    proto::install_pairwise_key(alice, bob, r);
  }
};

struct SessionRun {
  proto::HandshakeResult handshake;
  kdf::SessionKeys keys;
};

SessionRun run_session(ProtocolKind kind, World& world, std::uint64_t seed) {
  rng::TestRng rng_a(seed);
  rng::TestRng rng_b(seed + 1);
  auto pair = proto::make_parties(kind, world.alice, world.bob, rng_a, rng_b, kNow);
  SessionRun run;
  run.handshake = proto::run_handshake(*pair.initiator, *pair.responder);
  if (run.handshake.success) run.keys = pair.initiator->session_keys();
  return run;
}

/// The active splice: Eve runs her own CA, issues herself a certificate
/// *claiming Bob's identity*, and answers Alice's handshake with it.
bool mitm_attempt_rejected(ProtocolKind kind, World& world, std::uint64_t seed) {
  rng::TestRng eve_boot(seed + 100);
  cert::CertificateAuthority eve_ca(cert::DeviceId::from_string("evil-ca"),
                                    ec::Curve::p256().random_scalar(eve_boot));
  rng::TestRng eve_rng(seed + 101);
  proto::Credentials eve = proto::provision_device(
      eve_ca, cert::DeviceId::from_string("bob"), kNow, kLifetime, eve_rng);
  // Eve copies Bob's *public* identity but cannot know the alice-bob
  // pairwise key nor forge a CA-rooted certificate.

  rng::TestRng rng_a(seed + 102);
  rng::TestRng rng_e(seed + 103);
  auto pair = proto::make_parties(kind, world.alice, eve, rng_a, rng_e, kNow);
  const auto result = proto::run_handshake(*pair.initiator, *pair.responder);
  return !result.success;
}

}  // namespace

SecurityFacts run_scenarios(ProtocolKind kind, std::uint64_t seed) {
  World world(seed);
  SecurityFacts facts;
  facts.kind = kind;

  // --- honest session 1, with recorded encrypted application data (T1 prep)
  const SessionRun session1 = run_session(kind, world, seed + 10);
  if (!session1.handshake.success)
    throw std::runtime_error("run_scenarios: honest handshake failed");
  facts.handshake_ok = true;

  proto::SecureChannel alice_channel(session1.keys, proto::Role::kInitiator);
  const Bytes secret = bytes_of("BMS cell voltages: 3.91 3.92 3.90 3.93 [confidential]");
  const Bytes recorded_ciphertext = alice_channel.seal(secret);

  // --- session 2 under the same certificates (T4)
  const SessionRun session2 = run_session(kind, world, seed + 20);
  if (!session2.handshake.success)
    throw std::runtime_error("run_scenarios: second handshake failed");
  facts.fresh_keys_per_session = !kdf::ct_equal(session1.keys, session2.keys);

  // --- long-term credential leak, then reconstruction attack (T1/T4/T5)
  const LeakedMaterial leaked{world.alice, world.bob};
  const auto reconstructed =
      reconstruct_session_keys(kind, session1.handshake.transcript, leaked);
  facts.keys_derivable_from_longterm =
      reconstructed.has_value() && kdf::ct_equal(*reconstructed, session1.keys);

  if (facts.keys_derivable_from_longterm) {
    proto::SecureChannel adversary(*reconstructed, proto::Role::kResponder);
    auto opened = adversary.open(recorded_ciphertext);
    facts.past_traffic_exposed = opened.ok() && ct_equal(opened.value(), secret);
  } else if (proto::is_dynamic_kd(kind)) {
    // Demonstrate the best-effort SKD-style attack failing against STS.
    const kdf::SessionKeys guess =
        sts_static_dh_guess(session1.handshake.transcript, leaked);
    proto::SecureChannel adversary(guess, proto::Role::kResponder);
    auto opened = adversary.open(recorded_ciphertext);
    facts.past_traffic_exposed = opened.ok();  // must stay false
  }

  // --- active MitM splice without CA credentials (T2)
  facts.mitm_rejected = mitm_attempt_rejected(kind, world, seed);

  // --- key compromise impersonation with the victim's leaked state (T2/[12])
  const KciOutcome kci = kci_attempt(kind, world.alice, world.bob.certificate, kNow, seed + 200);
  facts.kci_resistant = kci.resistant();

  // --- structural design properties
  switch (kind) {
    case ProtocolKind::kSts:
    case ProtocolKind::kStsOptI:
    case ProtocolKind::kStsOptII:
    case ProtocolKind::kSEcdsa:
    case ProtocolKind::kSEcdsaExt: facts.signature_auth = true; break;
    case ProtocolKind::kScianc: facts.auth_tied_to_session_key = true; break;
    case ProtocolKind::kPoramb: facts.pairwise_storage_required = true; break;
  }
  return facts;
}

}  // namespace ecqv::attack
