// Key compromise impersonation (KCI) — the attack the paper's introduction
// singles out ("an especially dangerous attack, which is also prevalent in
// TLS" [12]).
//
// Setting: Eve has obtained the *victim's* (initiator A's) long-term
// credentials — private key, certificates, pairwise key store — but NOT the
// peer B's. KCI asks: can Eve now impersonate *B towards A*?
//
//  * SCIANC: yes. Authentication MACs are keyed from the session key, and
//    the session key is the static DH secret d_B*Q_A = d_A*Q_B — computable
//    from A's leaked d_A and B's public certificate. Eve forges B's side
//    entirely.
//  * PORAMB: yes. A's leaked pairwise key store contains the symmetric key
//    A shares with B; Eve MACs as B directly.
//  * S-ECDSA / STS: no. B's side requires an ECDSA signature under B's
//    implicitly-certified key, which Eve cannot produce from A's material.
//
// Each impersonation is implemented as a real adversary that crafts wire
// messages from the leaked material and drives the honest victim's state
// machine; "success" means the victim reaches established().
#pragma once

#include "core/credentials.hpp"
#include "core/protocol_ids.hpp"

namespace ecqv::attack {

struct KciOutcome {
  bool attempted = false;   // an impersonation strategy exists and ran
  bool victim_accepted = false;  // the honest initiator completed the handshake
  [[nodiscard]] bool resistant() const { return !victim_accepted; }
};

/// Runs the KCI experiment for `kind`: honest initiator `victim` (whose
/// credentials Eve holds) against Eve impersonating `peer_identity` (whose
/// certificate is public but whose private key Eve lacks).
KciOutcome kci_attempt(proto::ProtocolKind kind, const proto::Credentials& victim,
                       const cert::Certificate& peer_certificate, std::uint64_t now,
                       std::uint64_t seed);

}  // namespace ecqv::attack
