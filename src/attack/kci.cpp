#include "attack/kci.hpp"

#include <optional>

#include "core/driver.hpp"
#include "core/poramb.hpp"
#include "core/s_ecdsa.hpp"
#include "core/scianc.hpp"
#include "core/sts.hpp"
#include "ecqv/scheme.hpp"
#include "rng/test_rng.hpp"

namespace ecqv::attack {

namespace {

using proto::Message;
using proto::ProtocolKind;
using proto::Role;

constexpr std::size_t kIdSize = cert::kDeviceIdSize;

/// The static DH secret Eve computes from the *victim's* leaked private key
/// and the peer's public certificate — the KCI lever.
std::optional<ec::AffinePoint> kci_shared_secret(const proto::Credentials& victim,
                                                 const cert::Certificate& peer_cert) {
  auto qb = cert::extract_public_key(peer_cert, victim.ca_public);
  if (!qb) return std::nullopt;
  const ec::AffinePoint shared = ec::Curve::p256().mul(victim.private_key, qb.value());
  if (shared.infinity) return std::nullopt;
  return shared;
}

Message make(Role sender, std::string step, Bytes payload) {
  Message m;
  m.sender = sender;
  m.step = std::move(step);
  m.payload = std::move(payload);
  return m;
}

/// Eve vs SCIANC: full impersonation from the victim's key material.
KciOutcome kci_scianc(const proto::Credentials& victim, const cert::Certificate& peer_cert,
                      std::uint64_t now, std::uint64_t seed) {
  KciOutcome outcome;
  outcome.attempted = true;
  rng::TestRng victim_rng(seed), eve_rng(seed + 1);
  proto::SciancConfig config;
  config.now = now;
  proto::SciancInitiator alice(victim, victim_rng, config);

  auto a1 = alice.start();
  if (!a1) return outcome;
  const ByteView a1_payload(a1->payload);
  const ByteView nonce_a = a1_payload.subspan(kIdSize, proto::scianc_detail::kNonceSize);

  // Eve's forged B1: the peer's public identity and certificate, her nonce.
  const Bytes nonce_b = eve_rng.bytes(proto::scianc_detail::kNonceSize);
  const Bytes b1_payload = concat(
      {ByteView(peer_cert.subject.bytes), ByteView(nonce_b), ByteView(peer_cert.encode())});

  // The KCI step: session keys from the victim's own leaked private key.
  const auto shared = kci_shared_secret(victim, peer_cert);
  if (!shared) return outcome;
  const kdf::SessionKeys keys = kdf::derive_session_keys(
      *shared, concat({nonce_a, ByteView(nonce_b)}),
      bytes_of(std::string(proto::scianc_detail::kKdfLabel)));

  auto a2 = alice.on_message(make(Role::kResponder, "B1", b1_payload));
  if (!a2.ok() || !a2->has_value()) return outcome;

  // Eve does not even need to check A's MAC; she answers with a forged B2.
  const Bytes transcript = concat({ByteView(a1->payload), ByteView(b1_payload)});
  const Bytes mac_b = proto::scianc_detail::auth_mac(keys, Role::kResponder, transcript);
  auto final_reply = alice.on_message(make(Role::kResponder, "B2", mac_b));
  outcome.victim_accepted = final_reply.ok() && alice.established();
  return outcome;
}

/// Eve vs PORAMB: impersonation via the victim's leaked pairwise key store.
KciOutcome kci_poramb(const proto::Credentials& victim, const cert::Certificate& peer_cert,
                      std::uint64_t now, std::uint64_t seed) {
  KciOutcome outcome;
  const auto pairwise = victim.pairwise_keys.find(peer_cert.subject);
  if (pairwise == victim.pairwise_keys.end()) return outcome;  // nothing to exploit
  outcome.attempted = true;

  rng::TestRng victim_rng(seed), eve_rng(seed + 1);
  proto::PorambConfig config;
  config.now = now;
  proto::PorambInitiator alice(victim, victim_rng, config);

  auto a1 = alice.start();
  if (!a1) return outcome;
  const Bytes hello_a(a1->payload.begin(),
                      a1->payload.begin() + proto::poramb_detail::kHelloSize);

  const Bytes hello_b = eve_rng.bytes(proto::poramb_detail::kHelloSize);
  auto a2 = alice.on_message(make(Role::kResponder, "B1",
                                  concat({ByteView(hello_b), ByteView(peer_cert.subject.bytes)})));
  if (!a2.ok() || !a2->has_value()) return outcome;

  // Forged B2 under the stolen pairwise key.
  const Bytes peer_cert_bytes = peer_cert.encode();
  const Bytes nonce_b = eve_rng.bytes(proto::poramb_detail::kNonceSize);
  const Bytes mac_b = proto::poramb_detail::phase_mac(pairwise->second, hello_a, nonce_b,
                                                      peer_cert.subject, peer_cert_bytes);
  auto a3 = alice.on_message(make(
      Role::kResponder, "B2", concat({ByteView(peer_cert_bytes), ByteView(nonce_b), ByteView(mac_b)})));
  if (!a3.ok() || !a3->has_value()) return outcome;

  // Session keys from the victim's leaked ECQV private key; forged finish.
  const auto shared = kci_shared_secret(victim, peer_cert);
  if (!shared) return outcome;
  const Bytes salt = concat({ByteView(victim.id.bytes), ByteView(peer_cert.subject.bytes)});
  const kdf::SessionKeys keys = kdf::derive_session_keys(
      *shared, salt, bytes_of(std::string(proto::poramb_detail::kKdfLabel)));
  const Bytes fin_b = proto::poramb_detail::make_finish(keys, Role::kResponder, peer_cert_bytes,
                                                        hello_a, hello_b);
  auto done = alice.on_message(make(Role::kResponder, "B3", fin_b));
  outcome.victim_accepted = done.ok() && alice.established();
  return outcome;
}

/// Eve vs the ECDSA-authenticated protocols: her best move is a garbage
/// signature — the victim's verification against the peer's implicit
/// public key must reject it.
KciOutcome kci_signature_protocol(ProtocolKind kind, const proto::Credentials& victim,
                                  const cert::Certificate& peer_cert, std::uint64_t now,
                                  std::uint64_t seed) {
  KciOutcome outcome;
  outcome.attempted = true;
  rng::TestRng victim_rng(seed), eve_rng(seed + 1);

  if (kind == ProtocolKind::kSEcdsa || kind == ProtocolKind::kSEcdsaExt) {
    proto::SEcdsaConfig config;
    config.now = now;
    config.extended = kind == ProtocolKind::kSEcdsaExt;
    proto::SEcdsaInitiator alice(victim, victim_rng, config);
    auto a1 = alice.start();
    const Bytes forged_sig = eve_rng.bytes(sig::kSignatureSize);
    const Bytes nonce_b = eve_rng.bytes(proto::s_ecdsa_detail::kNonceSize);
    const Bytes b1 = concat({ByteView(peer_cert.subject.bytes), ByteView(peer_cert.encode()),
                             ByteView(forged_sig), ByteView(nonce_b)});
    auto reply = alice.on_message(make(Role::kResponder, "B1", b1));
    outcome.victim_accepted = reply.ok() && alice.established();
    return outcome;
  }

  // STS: Eve can agree on keys (unauthenticated DH) but cannot produce
  // Resp_B = Enc_KS(Sign_B(XG_E || XG_A)).
  proto::StsConfig config;
  config.now = now;
  proto::StsInitiator alice(victim, victim_rng, config);
  auto a1 = alice.start();
  if (!a1) return outcome;
  const ByteView xga = ByteView(a1->payload).subspan(kIdSize, ec::kRawXySize);
  const auto& curve = ec::Curve::p256();
  const bi::U256 xe = curve.random_scalar(eve_rng);
  const Bytes xge = ec::encode_raw_xy(curve.mul_base(xe));
  auto xga_point = ec::decode_raw_xy(curve, xga);
  if (!xga_point) return outcome;
  const kdf::SessionKeys keys = kdf::derive_session_keys(
      curve.mul(xe, xga_point.value()),
      proto::sts_detail::kd_salt(victim.id, peer_cert.subject),
      bytes_of(std::string(proto::sts_detail::kKdfLabel)));
  const Bytes forged_sig = eve_rng.bytes(sig::kSignatureSize);
  const Bytes resp_b = proto::sts_detail::crypt_resp(keys, Role::kResponder, forged_sig);
  const Bytes b1 = concat({ByteView(peer_cert.subject.bytes), ByteView(peer_cert.encode()),
                           ByteView(xge), ByteView(resp_b)});
  auto reply = alice.on_message(make(Role::kResponder, "B1", b1));
  outcome.victim_accepted = reply.ok() && alice.established();
  return outcome;
}

}  // namespace

KciOutcome kci_attempt(ProtocolKind kind, const proto::Credentials& victim,
                       const cert::Certificate& peer_certificate, std::uint64_t now,
                       std::uint64_t seed) {
  switch (kind) {
    case ProtocolKind::kScianc: return kci_scianc(victim, peer_certificate, now, seed);
    case ProtocolKind::kPoramb: return kci_poramb(victim, peer_certificate, now, seed);
    case ProtocolKind::kSEcdsa:
    case ProtocolKind::kSEcdsaExt:
    case ProtocolKind::kSts:
    case ProtocolKind::kStsOptI:
    case ProtocolKind::kStsOptII:
      return kci_signature_protocol(proto::wire_base(kind), victim, peer_certificate, now, seed);
  }
  return {};
}

}  // namespace ecqv::attack
