// Attack scenarios: concrete experiments that measure the security facts
// behind the paper's Table III (threats T1-T5 of §IV-A).
//
// Each fact is established by *running the attack*, not by asserting the
// expected answer:
//  * forward secrecy (T1): a session is recorded including encrypted
//    application data; afterwards both devices' long-term credentials leak;
//    the adversary reconstructs candidate session keys and tries to decrypt
//    the recording.
//  * key freshness (T4): two communication sessions under one certificate
//    session; the derived keys are compared.
//  * derivability (T4/T5): whether the reconstruction of recorded session
//    keys from (long-term keys, transcript) succeeds.
//  * MitM resistance (T2): an active adversary without CA-issued
//    credentials splices into the handshake with a self-made certificate;
//    honest parties must abort.
//  * node capture scope (T3): with one node's full state captured, which
//    sessions fall — past recordings, and impersonation of *other* nodes.
#pragma once

#include "attack/reconstruct.hpp"
#include "core/driver.hpp"

namespace ecqv::attack {

/// Mechanically measured facts about one protocol.
struct SecurityFacts {
  proto::ProtocolKind kind{};

  // Measured by experiment:
  bool fresh_keys_per_session = false;   // two sessions yield distinct keys
  bool past_traffic_exposed = false;     // recorded data decrypted post-leak
  bool keys_derivable_from_longterm = false;
  bool mitm_rejected = false;            // splice attempt aborted
  bool kci_resistant = false;            // victim-key leak can't impersonate peers
  bool handshake_ok = false;             // sanity: honest run succeeded

  // Structural properties of the protocol design:
  bool signature_auth = false;           // ECDSA-based mutual authentication
  bool auth_tied_to_session_key = false; // SCIANC's coupling
  bool pairwise_storage_required = false;// PORAMB's per-peer keys
};

/// Runs the full scenario suite for one protocol (deterministic under
/// `seed`). Throws std::runtime_error if the honest handshake itself fails.
SecurityFacts run_scenarios(proto::ProtocolKind kind, std::uint64_t seed = 7);

}  // namespace ecqv::attack
