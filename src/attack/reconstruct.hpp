// Session-key reconstruction attacks.
//
// The central question behind the paper's Table III: given a *recorded*
// handshake transcript and *later-leaked* long-term credentials (node
// capture, extracted flash, court order...), can an adversary recompute the
// session key and decrypt the recorded traffic?
//
// For the SKD protocols the answer is yes, by construction: the session key
// is a deterministic function of long-term keys plus public transcript
// fields. This module implements those reconstructions as an attacker would
// — parsing the raw transcript bytes, never touching the honest parties'
// state. For STS the premaster is X_A*X_B*G with both scalars ephemeral and
// wiped; no reconstruction from (transcript, long-term keys) exists, which
// the harness demonstrates by running the best available attempt (static
// DH) and watching decryption fail.
#pragma once

#include <optional>

#include "core/credentials.hpp"
#include "core/message.hpp"
#include "core/protocol_ids.hpp"
#include "kdf/session_keys.hpp"

namespace ecqv::attack {

/// What the adversary holds after a node-capture/credential leak: both
/// devices' long-term material (worst case) and the public transcript.
struct LeakedMaterial {
  proto::Credentials initiator;  // copies: private keys, certs, pairwise keys
  proto::Credentials responder;
};

/// Attempts to reconstruct the session keys of a recorded handshake.
/// Returns the keys if the protocol's derivation is reproducible from the
/// leaked material; std::nullopt if no reconstruction is known (STS).
std::optional<kdf::SessionKeys> reconstruct_session_keys(proto::ProtocolKind kind,
                                                         const proto::Transcript& transcript,
                                                         const LeakedMaterial& leaked);

/// The *best-effort wrong* attempt against STS (static-DH guess), used to
/// demonstrate that the obvious SKD-style attack yields garbage keys.
kdf::SessionKeys sts_static_dh_guess(const proto::Transcript& transcript,
                                     const LeakedMaterial& leaked);

}  // namespace ecqv::attack
