#include "attack/reconstruct.hpp"

#include "core/poramb.hpp"
#include "core/s_ecdsa.hpp"
#include "core/scianc.hpp"
#include "core/sts.hpp"
#include "ecqv/scheme.hpp"

namespace ecqv::attack {

namespace {

using proto::ProtocolKind;

/// Finds the first transcript message with the given step label.
const proto::Message* find_step(const proto::Transcript& transcript, std::string_view step) {
  for (const auto& m : transcript)
    if (m.step == step) return &m;
  return nullptr;
}

/// Static DH secret between the leaked identities (what every SKD protocol
/// bottoms out in). Recomputed from scratch: d_A * Q_B with Q_B extracted
/// from B's public certificate.
std::optional<ec::AffinePoint> leaked_static_dh(const LeakedMaterial& leaked) {
  auto qb = cert::extract_public_key(leaked.responder.certificate, leaked.initiator.ca_public);
  if (!qb) return std::nullopt;
  const ec::AffinePoint shared = ec::Curve::p256().mul(leaked.initiator.private_key, qb.value());
  if (shared.infinity) return std::nullopt;
  return shared;
}

std::optional<kdf::SessionKeys> reconstruct_s_ecdsa(const LeakedMaterial& leaked) {
  // KS = KDF(dh.x, ID_A || ID_B, label): nothing session-specific needed.
  const auto dh = leaked_static_dh(leaked);
  if (!dh) return std::nullopt;
  const Bytes salt =
      concat({ByteView(leaked.initiator.id.bytes), ByteView(leaked.responder.id.bytes)});
  return kdf::derive_session_keys(*dh, salt,
                                  bytes_of(std::string(proto::s_ecdsa_detail::kKdfLabel)));
}

std::optional<kdf::SessionKeys> reconstruct_scianc(const proto::Transcript& transcript,
                                                   const LeakedMaterial& leaked) {
  // KS = KDF(dh.x, Nonce_A || Nonce_B): nonces are plaintext in A1/B1.
  const proto::Message* a1 = find_step(transcript, "A1");
  const proto::Message* b1 = find_step(transcript, "B1");
  if (a1 == nullptr || b1 == nullptr) return std::nullopt;
  constexpr std::size_t kId = cert::kDeviceIdSize;
  constexpr std::size_t kNonce = proto::scianc_detail::kNonceSize;
  if (a1->payload.size() < kId + kNonce || b1->payload.size() < kId + kNonce)
    return std::nullopt;
  const ByteView nonce_a = ByteView(a1->payload).subspan(kId, kNonce);
  const ByteView nonce_b = ByteView(b1->payload).subspan(kId, kNonce);
  const auto dh = leaked_static_dh(leaked);
  if (!dh) return std::nullopt;
  const Bytes salt = concat({nonce_a, nonce_b});
  return kdf::derive_session_keys(*dh, salt,
                                  bytes_of(std::string(proto::scianc_detail::kKdfLabel)));
}

std::optional<kdf::SessionKeys> reconstruct_poramb(const LeakedMaterial& leaked) {
  const auto dh = leaked_static_dh(leaked);
  if (!dh) return std::nullopt;
  const Bytes salt =
      concat({ByteView(leaked.initiator.id.bytes), ByteView(leaked.responder.id.bytes)});
  return kdf::derive_session_keys(*dh, salt,
                                  bytes_of(std::string(proto::poramb_detail::kKdfLabel)));
}

}  // namespace

kdf::SessionKeys sts_static_dh_guess(const proto::Transcript& transcript,
                                     const LeakedMaterial& leaked) {
  (void)transcript;  // nothing in the transcript helps: XG scalars are gone
  const auto dh = leaked_static_dh(leaked);
  const Bytes salt = proto::sts_detail::kd_salt(leaked.initiator.id, leaked.responder.id);
  if (!dh) return kdf::SessionKeys{};
  return kdf::derive_session_keys(*dh, salt,
                                  bytes_of(std::string(proto::sts_detail::kKdfLabel)));
}

std::optional<kdf::SessionKeys> reconstruct_session_keys(proto::ProtocolKind kind,
                                                         const proto::Transcript& transcript,
                                                         const LeakedMaterial& leaked) {
  switch (kind) {
    case ProtocolKind::kSEcdsa:
    case ProtocolKind::kSEcdsaExt: return reconstruct_s_ecdsa(leaked);
    case ProtocolKind::kScianc: return reconstruct_scianc(transcript, leaked);
    case ProtocolKind::kPoramb: return reconstruct_poramb(leaked);
    case ProtocolKind::kSts:
    case ProtocolKind::kStsOptI:
    case ProtocolKind::kStsOptII:
      // Perfect forward secrecy: no reconstruction from long-term keys +
      // transcript. (See sts_static_dh_guess for the demonstrably failing
      // attempt.)
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace ecqv::attack
